//! Differential check of the folded-stacks emitter: the stack-sweep
//! aggregation in `acfc_obs::folded_lines` must agree with a naive
//! O(n²) span-walk reference on generated span forests.
//!
//! The reference never builds a stack. It derives each span's parent
//! directly from the nesting convention the RAII span log guarantees —
//! a span `b` nests inside the innermost earlier-opened span `a` that
//! is still open at `b.start` (`a.end > b.start`, half-open intervals,
//! equal-extent spans nesting in log order) — then walks parent chains
//! and subtracts direct-child durations one span at a time.

use acfc_obs::{folded_lines, WallSpan};
use std::collections::BTreeMap;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The open order of spans on one thread: by start time, longer span
/// first at equal starts (the longer one encloses), log order last —
/// the same total order the emitter's stable sort produces.
fn open_key(spans: &[WallSpan], i: usize) -> (u64, u64, usize) {
    (spans[i].start_us, u64::MAX - spans[i].end_us, i)
}

/// Index of span `i`'s direct parent: the latest-opening same-thread
/// span that opened strictly before `i` and is still open at
/// `i.start_us` (half-open: a span ending exactly at `i.start_us` has
/// already closed).
fn parent_of(spans: &[WallSpan], i: usize) -> Option<usize> {
    let s = &spans[i];
    (0..spans.len())
        .filter(|&j| {
            spans[j].tid == s.tid
                && open_key(spans, j) < open_key(spans, i)
                && spans[j].end_us > s.start_us
        })
        .max_by_key(|&j| open_key(spans, j))
}

/// Folded aggregation the slow way: per span, walk its parent chain up
/// to the thread root and subtract its direct children's durations.
fn naive_folded(spans: &[WallSpan], labels: &[(u64, String)]) -> BTreeMap<String, u64> {
    let mut agg = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let child_us: u64 = (0..spans.len())
            .filter(|&j| parent_of(spans, j) == Some(i))
            .map(|j| spans[j].end_us - spans[j].start_us)
            .sum();
        let self_us = (s.end_us - s.start_us).saturating_sub(child_us);
        let root = labels
            .iter()
            .find(|(t, _)| *t == s.tid)
            .map(|(_, l)| l.clone())
            .unwrap_or_else(|| format!("thread {}", s.tid));
        let mut chain = vec![s.name.to_string()];
        let mut at = i;
        while let Some(p) = parent_of(spans, at) {
            chain.push(spans[p].name.to_string());
            at = p;
        }
        chain.push(root);
        chain.reverse();
        *agg.entry(chain.join(";")).or_insert(0u64) += self_us;
    }
    agg
}

fn parse_folded(text: &str) -> BTreeMap<String, u64> {
    text.lines()
        .map(|l| {
            let (path, v) = l.rsplit_once(' ').expect("folded line has a value");
            (path.to_string(), v.parse().expect("numeric self time"))
        })
        .collect()
}

/// Generates a well-nested random forest per thread by recursive
/// descent over a shrinking time budget: each step either opens a
/// child inside the current span, emits a sibling, or pops back to the
/// enclosing span's remaining range. Zero-length spans (budget
/// exhausted) and duplicate extents arise naturally.
fn gen_forest(rng: &mut XorShift, threads: u64, spans_per_thread: usize) -> Vec<WallSpan> {
    const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];
    let mut out = Vec::new();
    for tid in 0..threads {
        let mut budgets: Vec<u64> = Vec::new();
        let mut t = rng.next() % 100;
        let mut end_budget = 1_000_000u64;
        for _ in 0..spans_per_thread {
            let name = NAMES[(rng.next() % NAMES.len() as u64) as usize];
            let room = end_budget.saturating_sub(t);
            let dur = rng.next() % (room / 2).max(1);
            let end = (t + dur).min(end_budget);
            match rng.next() % 3 {
                0 if end > t + 2 => {
                    // Child: open [t, end) and descend into it.
                    budgets.push(end_budget);
                    out.push(WallSpan {
                        name,
                        tid,
                        start_us: t,
                        end_us: end,
                    });
                    t += 1;
                    end_budget = end;
                }
                1 => {
                    // Sibling: emit [t, end) and advance past it.
                    out.push(WallSpan {
                        name,
                        tid,
                        start_us: t,
                        end_us: end,
                    });
                    t = end;
                }
                _ => {
                    // Pop to the enclosing span's remaining range.
                    if let Some(budget) = budgets.pop() {
                        t = end_budget;
                        end_budget = budget;
                    } else {
                        t += rng.next() % 10;
                    }
                }
            }
        }
    }
    out
}

#[test]
fn folded_lines_match_naive_reference_on_random_forests() {
    let mut rng = XorShift(0x5eed5eed5eed5eed);
    for round in 0..20u64 {
        let forest = gen_forest(&mut rng, 1 + round % 4, 40);
        let labels = vec![(0u64, "sweep-0".to_string())];
        let fast = parse_folded(&folded_lines(&forest, &labels));
        let slow = naive_folded(&forest, &labels);
        assert_eq!(fast, slow, "divergence on round {round}: {forest:?}");
    }
}

#[test]
fn folded_totals_conserve_wall_time() {
    // Sum of self times over all stacks == sum of root spans' wall
    // time: self-time attribution moves time between frames but never
    // creates or destroys it.
    let mut rng = XorShift(42);
    let forest = gen_forest(&mut rng, 3, 60);
    let folded = parse_folded(&folded_lines(&forest, &[]));
    let folded_total: u64 = folded.values().sum();
    let root_total: u64 = (0..forest.len())
        .filter(|&i| parent_of(&forest, i).is_none())
        .map(|i| forest[i].end_us - forest[i].start_us)
        .sum();
    assert_eq!(folded_total, root_total);
}
