//! Pins `bootstrap_median_ci` against a brute-force reference on small
//! inputs: the reference replays the identical seeded draw sequence but
//! materialises every resample as a sorted vector and takes the order
//! statistic directly, instead of the tally-and-scan the production
//! path uses. Any divergence in draw mapping, median definition, or
//! percentile ranking shows up as an exact mismatch.

use acfc_obs::{bootstrap_median_ci, LocalHist, MedianCi};

/// The same splitmix64 the production bootstrap seeds itself with.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next();
            if x < zone {
                return x % n;
            }
        }
    }
}

/// Brute-force reference: identical seeding and draw order, but each
/// resample is materialised and sorted, and the median is the
/// ceil(n/2)-th order statistic of the materialised values.
fn reference(values: &[u64], resamples: u32, seed: u64) -> Option<MedianCi> {
    if values.is_empty() || resamples == 0 {
        return None;
    }
    let mut hist = LocalHist::new();
    for &v in values {
        hist.record(v);
    }
    let snap = hist.snap();
    // The empirical distribution the production path sees: one entry
    // per non-empty bucket, carrying the bucket's upper bound.
    let mut pool: Vec<u64> = Vec::new();
    for (i, &c) in snap.buckets.iter().enumerate() {
        let bound = if i == 0 { 0 } else { 1u64 << i };
        for _ in 0..c {
            pool.push(bound);
        }
    }
    let total = pool.len() as u64;
    let mut rng = SplitMix(seed ^ 0x1957_0ca1_b007_57a9);
    let mut meds = Vec::new();
    for _ in 0..resamples {
        let mut sample: Vec<u64> = (0..total)
            .map(|_| pool[rng.below(total) as usize])
            .collect();
        sample.sort_unstable();
        meds.push(sample[(total.div_ceil(2) - 1) as usize]);
    }
    meds.sort_unstable();
    let rank = |q: f64| -> u64 {
        let r = (q * resamples as f64).ceil().max(1.0) as usize;
        meds[r.min(meds.len()) - 1]
    };
    Some(MedianCi {
        median: snap.quantile_bound(0.5),
        lo: rank(0.025),
        hi: rank(0.975),
        resamples,
    })
}

fn snap_of(values: &[u64]) -> acfc_obs::HistSnapshot {
    let mut hist = LocalHist::new();
    for &v in values {
        hist.record(v);
    }
    hist.snap()
}

#[test]
fn matches_brute_force_reference_on_small_inputs() {
    let cases: Vec<Vec<u64>> = vec![
        vec![7],
        vec![0, 0, 0, 1],
        vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        vec![100, 100, 100, 4000, 4000, 250_000],
        (0..40).map(|i| i * i).collect(),
        vec![u64::MAX, 1, 2, 3],
    ];
    for (ci, values) in cases.iter().enumerate() {
        for seed in [0u64, 1, 0xACFC, 0xDEAD_BEEF] {
            let got = bootstrap_median_ci(&snap_of(values), 64, seed);
            let want = reference(values, 64, seed);
            assert_eq!(got, want, "case {ci} seed {seed:#x}");
        }
    }
}

#[test]
fn empty_and_zero_resamples_are_absent() {
    assert_eq!(bootstrap_median_ci(&snap_of(&[]), 100, 1), None);
    assert_eq!(bootstrap_median_ci(&snap_of(&[1, 2, 3]), 0, 1), None);
}

#[test]
fn degenerate_pool_gives_degenerate_interval() {
    let m = bootstrap_median_ci(&snap_of(&[500; 12]), 100, 7).unwrap();
    // Every draw lands in the same bucket, so the interval collapses.
    assert_eq!(m.lo, m.hi);
    assert_eq!(m.lo, m.median);
}

#[test]
fn interval_is_ordered_and_deterministic() {
    let values: Vec<u64> = (0..200).map(|i| (i * 37) % 10_000).collect();
    let snap = snap_of(&values);
    let a = bootstrap_median_ci(&snap, 200, 42).unwrap();
    let b = bootstrap_median_ci(&snap, 200, 42).unwrap();
    assert_eq!(a, b);
    assert!(a.lo <= a.hi);
    assert!(a.lo <= a.median && a.median <= a.hi);
    assert_eq!(a.resamples, 200);
}
