//! Seeded pseudo-random numbers without external crates.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through
//! **SplitMix64** exactly as the reference implementation recommends.
//! It is not cryptographic; it is fast, has 256 bits of state, passes
//! BigCrush, and — the property the simulator and the Monte-Carlo
//! estimators actually rely on — is *reproducible*: the same seed
//! yields the same stream on every platform.
//!
//! [`Rng::stream`] derives statistically independent sub-streams from a
//! base seed, which is what makes chunked parallel Monte-Carlo
//! bit-identical to the sequential run: chunk `c` always consumes
//! stream `c`, no matter which thread executes it.

/// SplitMix64: the seeding generator (also usable standalone for
/// cheap hash-like mixing).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One round of SplitMix64 mixing as a pure function (for deriving
/// stream seeds).
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// xoshiro256++ — the workhorse generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` via SplitMix64 (the
    /// reference seeding procedure; mirrors the former
    /// `SmallRng::seed_from_u64` call sites).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Derives sub-stream `stream` of a base seed. Distinct streams of
    /// the same seed are statistically independent; the mapping is a
    /// pure function, so chunked parallel consumers are deterministic.
    pub fn stream(seed: u64, stream: u64) -> Rng {
        Rng::seed_from_u64(seed ^ mix64(stream.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)))
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `0..=hi` (inclusive), unbiased via Lemire-style
    /// rejection on the widened multiply.
    #[inline]
    pub fn gen_u64_inclusive(&mut self, hi: u64) -> u64 {
        if hi == u64::MAX {
            return self.next_u64();
        }
        let range = hi + 1;
        // Rejection sampling over the top `range`-multiple.
        let zone = u64::MAX - (u64::MAX - range + 1) % range;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % range;
            }
        }
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.gen_u64_inclusive(n as u64 - 1) as usize
    }

    /// Uniform in the half-open integer range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.gen_u64_inclusive(span - 1) as i64)
    }

    /// Uniform `f64` in the **half-open unit interval `(0, 1]`** — safe
    /// as an argument to `ln()` for exponential draws.
    pub fn open01(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.open01() <= p
    }

    /// An exponentially distributed draw with rate `lambda`.
    pub fn exp(&mut self, lambda: f64) -> f64 {
        -self.open01().ln() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: seeding xoshiro256++ with SplitMix64(0) and
        // checking the stream is self-consistent & stable.
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
        let mut c = Rng::seed_from_u64(1);
        assert_ne!(first[0], c.next_u64());
    }

    #[test]
    fn streams_differ_and_are_deterministic() {
        let mut s0 = Rng::stream(42, 0);
        let mut s1 = Rng::stream(42, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        let mut s0b = Rng::stream(42, 0);
        let mut s0c = Rng::stream(42, 0);
        assert_eq!(s0b.next_u64(), s0c.next_u64());
    }

    #[test]
    fn inclusive_range_bounds_and_uniformity() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [0u32; 5];
        for _ in 0..5_000 {
            let v = r.gen_u64_inclusive(4);
            assert!(v <= 4);
            seen[v as usize] += 1;
        }
        for &count in &seen {
            assert!((700..1300).contains(&count), "{seen:?}");
        }
        assert_eq!(r.gen_u64_inclusive(0), 0);
    }

    #[test]
    fn open01_is_in_zero_one() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = r.open01();
            assert!(u > 0.0 && u <= 1.0);
            assert!(u.ln().is_finite());
        }
    }

    #[test]
    fn i64_range_hits_endpoints() {
        let mut r = Rng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            let v = r.gen_i64_range(-2, 3);
            assert!((-2..3).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exp_mean_roughly_inverse_rate() {
        let mut r = Rng::seed_from_u64(5);
        let lambda = 0.5;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(lambda)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "{mean}");
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut r = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
