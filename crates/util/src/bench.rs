//! Wall-clock timing harness and JSON emission for the perf artifacts.
//!
//! Replaces the former `criterion` dev-dependency for the repo's
//! purposes: each measurement warms up, then runs batches until both a
//! minimum iteration count and a minimum wall time are reached, and
//! reports the median per-iteration time over batches (robust to a
//! stray slow batch). [`Json`] is a minimal object writer for the
//! `BENCH_*.json` perf-trajectory files.

use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Total iterations across all measured batches.
    pub iters: u64,
    /// Median per-iteration nanoseconds across batches.
    pub median_ns: f64,
    /// Mean per-iteration nanoseconds over everything measured.
    pub mean_ns: f64,
}

impl Sample {
    /// Iterations per second implied by the median.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.median_ns.max(1e-9)
    }

    /// Human-readable one-liner.
    pub fn render(&self) -> String {
        format!(
            "{:<44} {:>12.1} ns/iter ({:.1} iters/s, {} iters)",
            self.name,
            self.median_ns,
            self.per_sec(),
            self.iters
        )
    }
}

/// Measures `f`, discarding its output via [`std::hint::black_box`].
///
/// Runs one warm-up batch, then measures batches of adaptively chosen
/// size until at least `min_total_ms` of wall time and 10 batches have
/// accumulated.
pub fn bench<R>(name: &str, min_total_ms: u64, mut f: impl FnMut() -> R) -> Sample {
    // Warm-up and batch sizing: aim for ~10ms batches.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once_ns = t0.elapsed().as_nanos().max(1);
    let batch = ((10_000_000 / once_ns).max(1) as u64).min(1_000_000);
    let mut batch_ns: Vec<f64> = Vec::new();
    let mut total_iters = 0u64;
    let mut total_ns = 0u128;
    let deadline_ns = (min_total_ms as u128) * 1_000_000;
    while total_ns < deadline_ns || batch_ns.len() < 10 {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos();
        batch_ns.push(ns as f64 / batch as f64);
        total_iters += batch;
        total_ns += ns;
        if batch_ns.len() > 10_000 {
            break; // pathological: f too fast for the deadline to bind
        }
    }
    batch_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = batch_ns[batch_ns.len() / 2];
    Sample {
        name: name.to_string(),
        iters: total_iters,
        median_ns,
        mean_ns: total_ns as f64 / total_iters as f64,
    }
}

/// Times a single run of `f` (for macro measurements where one
/// execution is already seconds long), returning `(result, seconds)`.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// A tiny JSON object writer (insertion-ordered, no external deps).
#[derive(Debug, Default)]
pub struct Json {
    fields: Vec<(String, String)>,
}

impl Json {
    /// An empty object.
    pub fn new() -> Json {
        Json::default()
    }

    /// Adds a numeric field (serialised with enough precision to
    /// round-trip).
    pub fn num(mut self, key: &str, value: f64) -> Json {
        let rendered = if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value:.6}")
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a string field (escaping quotes and backslashes).
    pub fn str(mut self, key: &str, value: &str) -> Json {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a raw pre-serialised value (e.g. a nested object).
    pub fn raw(mut self, key: &str, value: String) -> Json {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Serialises the object.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect();
        format!("{{\n{}\n}}", body.join(",\n"))
    }

    /// Serialises the object onto a single line with no interior
    /// whitespace — the JSONL form (one object per line) used by
    /// streaming sweep artifacts.
    pub fn render_line(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let s = bench("spin", 5, || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.median_ns > 0.0);
        assert!(s.iters >= 10);
        assert!(s.render().contains("spin"));
        assert!(s.per_sec() > 0.0);
    }

    #[test]
    fn time_once_returns_result() {
        let (v, secs) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn json_renders_ordered_and_escaped() {
        let j = Json::new()
            .str("name", "a \"b\" \\c")
            .num("count", 3.0)
            .num("ratio", 0.5)
            .raw("nested", Json::new().num("x", 1.0).render());
        let text = j.render();
        assert!(text.starts_with("{\n  \"name\": \"a \\\"b\\\" \\\\c\","));
        assert!(text.contains("\"count\": 3,"));
        assert!(text.contains("\"ratio\": 0.500000"));
        assert!(text.contains("\"x\": 1"));
    }

    #[test]
    fn render_line_is_single_line_compact() {
        let j = Json::new()
            .str("proto", "app-driven")
            .num("n", 8.0)
            .raw("lat", Json::new().num("p50", 101.0).render_line());
        let line = j.render_line();
        assert_eq!(
            line,
            "{\"proto\":\"app-driven\",\"n\":8,\"lat\":{\"p50\":101}}"
        );
        assert!(!line.contains('\n'));
    }
}
