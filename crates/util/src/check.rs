//! A miniature property-test harness.
//!
//! Replaces the former `proptest` dev-dependency with something the
//! repo owns: a seeded generator handle ([`Gen`]) plus a [`forall`]
//! runner. There is no shrinking — instead every case is **replayable**:
//! a failing case panics with its case number, and
//! `ACFC_CHECK_CASE=<n>` re-runs exactly that case (with
//! `ACFC_CHECK_SEED` overriding the base seed when set). Case streams
//! are derived per-case via [`crate::rng::Rng::stream`], so inserting
//! draws inside one case never perturbs the others.
//!
//! `ACFC_CHECK_CASES` scales the case count globally (e.g. a longer
//! nightly run).

use crate::rng::Rng;

/// The per-case random source handed to a property.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
    /// The case number within the `forall` run (for diagnostics).
    pub case: u32,
}

impl Gen {
    /// A generator over an explicit RNG (for standalone use).
    pub fn from_rng(rng: Rng, case: u32) -> Gen {
        Gen { rng, case }
    }

    /// Uniform `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.gen_index(hi - lo)
    }

    /// Uniform `i64` in `lo..hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_i64_range(lo, hi)
    }

    /// Uniform `u64` in `lo..hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.gen_u64_inclusive(hi - lo - 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_f64_range(lo, hi)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn prob(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.rng.gen_index(options.len())]
    }

    /// Chooses a variant index given `weights` (like `prop_oneof!` with
    /// weights); returns the selected index.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "all weights zero");
        let mut x = self.rng.gen_u64_inclusive(total - 1);
        for (i, &w) in weights.iter().enumerate() {
            if x < w as u64 {
                return i;
            }
            x -= w as u64;
        }
        unreachable!()
    }

    /// Builds a vector of `usize_in(lo, hi)` elements via `f`.
    pub fn vec_of<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = if lo == hi { lo } else { self.usize_in(lo, hi) };
        (0..len).map(|_| f(self)).collect()
    }

    /// `Some(f(g))` with probability `p`.
    pub fn option<T>(&mut self, p: f64, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
        if self.prob(p) {
            Some(f(self))
        } else {
            None
        }
    }

    /// A lowercase ASCII identifier of length `lo..hi`.
    pub fn ident(&mut self, lo: usize, hi: usize) -> String {
        let len = self.usize_in(lo.max(1), hi.max(2));
        (0..len)
            .map(|_| (b'a' + self.rng.gen_index(26) as u8) as char)
            .collect()
    }
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Derives a stable base seed from the property name (so adding a
/// property never shifts another's cases).
fn base_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `property` for `cases` independently seeded cases. On failure
/// the panic message names the case; re-run just that case with
/// `ACFC_CHECK_CASE=<n>`. `ACFC_CHECK_CASES` multiplies the case count
/// by `<value>/100` (percent), `ACFC_CHECK_SEED` overrides the base
/// seed derived from `name`.
pub fn forall(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    let seed = env_u64("ACFC_CHECK_SEED").unwrap_or_else(|| base_seed(name));
    if let Some(case) = env_u32("ACFC_CHECK_CASE") {
        let mut g = Gen::from_rng(Rng::stream(seed, case as u64), case);
        property(&mut g);
        return;
    }
    let scaled = match env_u32("ACFC_CHECK_CASES") {
        Some(pct) => ((cases as u64 * pct as u64) / 100).max(1) as u32,
        None => cases,
    };
    for case in 0..scaled {
        let mut g = Gen::from_rng(Rng::stream(seed, case as u64), case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut g);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property `{name}` failed at case {case}/{scaled} \
                 (replay: ACFC_CHECK_CASE={case} ACFC_CHECK_SEED={seed})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case() {
        let mut seen = Vec::new();
        forall("count", 10, |g| seen.push(g.case));
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cases_are_independent_of_draw_count() {
        // Case 3's draws are identical whether earlier cases draw a lot
        // or a little: streams are derived per case, not chained.
        let mut a = Vec::new();
        forall("indep", 5, |g| {
            if g.case < 3 {
                let _ = g.usize_in(0, 100);
            }
            a.push(g.i64_in(0, 1_000_000));
        });
        let mut b = Vec::new();
        forall("indep", 5, |g| {
            b.push(g.i64_in(0, 1_000_000));
        });
        assert_eq!(a[3..], b[3..]);
    }

    #[test]
    fn failing_case_is_reported() {
        let result = std::panic::catch_unwind(|| {
            forall("boom", 20, |g| assert!(g.case != 7));
        });
        assert!(result.is_err());
    }

    #[test]
    fn weighted_respects_zero_weight() {
        forall("weights", 50, |g| {
            let i = g.weighted(&[1, 0, 3]);
            assert_ne!(i, 1);
        });
    }

    #[test]
    fn generator_helpers_stay_in_bounds() {
        forall("bounds", 100, |g| {
            let v = g.vec_of(0, 5, |g| g.usize_in(2, 9));
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| (2..9).contains(&x)));
            let s = g.ident(1, 8);
            assert!(!s.is_empty() && s.len() < 8);
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let o = g.option(0.5, |g| g.f64_in(0.0, 1.0));
            if let Some(x) = o {
                assert!((0.0..1.0).contains(&x));
            }
        });
    }
}
