//! # Shared runtime utilities for ACFC
//!
//! Everything in this crate exists so the rest of the workspace needs
//! **zero registry dependencies** (DESIGN.md §5: small enough to own):
//!
//! * [`rng`] — a seeded PRNG (SplitMix64 seeding, xoshiro256++ core)
//!   replacing the former `rand::SmallRng` uses. [`rng::Rng::stream`]
//!   derives independent sub-streams for deterministic parallel
//!   Monte-Carlo chunking.
//! * [`parallel`] — a `std::thread::scope`-based fan-out helper used by
//!   the multi-`n` re-checks, Monte-Carlo trial batches, and figure
//!   sweeps. Honors `ACFC_THREADS` and `std::thread::available_parallelism`.
//! * [`check`] — a miniature property-test harness (seeded generators +
//!   a `forall` runner) replacing the former `proptest` dev-dependency.
//! * [`bench`] — a wall-clock timing harness and a tiny JSON writer for
//!   the perf-trajectory artifacts (`cargo bench-json`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod check;
pub mod parallel;
pub mod rng;

pub use check::{forall, Gen};
pub use parallel::{
    configured_threads, par_for_each_ordered_labeled, par_map, par_map_labeled, par_map_threads,
    par_map_threads_labeled,
};
pub use rng::Rng;
