//! Scoped-thread fan-out without external crates.
//!
//! The analysis and evaluation sweeps are embarrassingly parallel
//! (per-`n` re-checks, Monte-Carlo chunks, figure rows), so a work-list
//! over `std::thread::scope` is all that is needed. The helpers here
//! preserve **input order** in the output and are deterministic as long
//! as the per-item closure is (thread assignment never leaks into the
//! result).
//!
//! The thread count comes from, in priority order:
//!
//! 1. the explicit `threads` argument ([`par_map_threads`]),
//! 2. the `ACFC_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// The fan-out width used by [`par_map`]: `ACFC_THREADS` if set and
/// positive, otherwise the machine's available parallelism (1 if even
/// that is unknown).
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("ACFC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`configured_threads`] threads, returning
/// results in input order. See [`par_map_threads`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(items, configured_threads(), f)
}

/// [`par_map`] on OS threads named `{label}-{k}`, so wall-clock span
/// profiles (`--profile` on the sweep drivers) attribute work to
/// readable tracks instead of anonymous dense tids.
pub fn par_map_labeled<T, R, F>(items: &[T], label: &str, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads_labeled(items, configured_threads(), Some(label), f)
}

/// Maps `f(index, item)` over `items` on up to `threads` OS threads
/// (scoped; no detached threads survive the call), returning results in
/// **input order**. With `threads <= 1`, runs inline with no thread
/// machinery at all — the sequential and parallel paths execute the
/// same closure on the same items, so any deterministic `f` yields
/// identical output at every thread count.
///
/// Work is distributed by an atomic cursor (dynamic load balancing), so
/// heterogeneous item costs — e.g. Phase-III re-analysis at different
/// `n` — don't serialise on the slowest chunk.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads_labeled(items, threads, None, f)
}

/// [`par_map_threads`] with an optional worker label: each spawned
/// thread is named `{label}-{k}` (`k` = worker index), which both the
/// obs span log and panic messages pick up. Thread naming never
/// affects results — assignment of items to workers stays dynamic and
/// the output stays in input order.
pub fn par_map_threads_labeled<T, R, F>(
    items: &[T],
    threads: usize,
    label: Option<&str>,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for k in 0..workers {
            let work = || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = f(i, &items[i]);
                slots.lock().expect("no worker panicked")[i] = Some(value);
            };
            match label {
                Some(label) => {
                    std::thread::Builder::new()
                        .name(format!("{label}-{k}"))
                        .spawn_scoped(scope, work)
                        .expect("spawn labeled worker");
                }
                None => {
                    scope.spawn(work);
                }
            }
        }
    });
    slots
        .into_inner()
        .expect("no worker panicked")
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// Streaming variant of [`par_map_threads_labeled`]: maps `f(index,
/// item)` over `items` on up to `threads` workers named `{label}-{k}`,
/// but instead of collecting a `Vec` it hands each result to `emit` **in
/// input order, as soon as the order-prefix completes** — item 0's
/// result is delivered the moment it finishes, not after the whole
/// batch.
///
/// Completion order under work-stealing varies with the thread count,
/// so workers send `(index, result)` to the calling thread, which holds
/// out-of-order arrivals in a reorder buffer and drains the contiguous
/// prefix. The `emit` callback therefore observes *exactly* the same
/// sequence at every thread count: with a deterministic `f`, output
/// through `emit` is bit-identical between `threads = 1` and
/// `threads = N`, while still streaming during the run. This is what
/// lets the sweep engine print table rows and append JSONL lines live
/// without sacrificing the determinism pin.
///
/// `emit` runs on the calling thread only, so it may hold `&mut` state
/// (a writer, a progress bar) without synchronisation.
pub fn par_for_each_ordered_labeled<T, R, F, S>(
    items: &[T],
    threads: usize,
    label: &str,
    f: F,
    mut emit: S,
) where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        for (i, item) in items.iter().enumerate() {
            let value = f(i, item);
            emit(i, value);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let (f, cursor) = (&f, &cursor);
    std::thread::scope(|scope| {
        for k in 0..workers {
            let tx = tx.clone();
            std::thread::Builder::new()
                .name(format!("{label}-{k}"))
                .spawn_scoped(scope, move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let value = f(i, &items[i]);
                    if tx.send((i, value)).is_err() {
                        break; // receiver gone: the scope is unwinding
                    }
                })
                .expect("spawn labeled worker");
        }
        drop(tx); // the loop below ends when the last worker hangs up
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        for (i, value) in rx {
            pending.insert(i, value);
            while let Some(value) = pending.remove(&next) {
                emit(next, value);
                next += 1;
            }
        }
        debug_assert!(pending.is_empty(), "worker died mid-batch");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_threads(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let seq = par_map_threads(&items, 1, |_, &x| x.wrapping_mul(0x9E3779B97F4A7C15));
        let par = par_map_threads(&items, 4, |_, &x| x.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<i32> = vec![];
        assert!(par_map_threads(&none, 4, |_, &x| x).is_empty());
        assert_eq!(par_map_threads(&[7], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_threads(&[1, 2, 3], 64, |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn ordered_streaming_emits_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..200).collect();
        // Make early items slow so later items finish first and the
        // reorder buffer actually has to hold arrivals back.
        let work = |i: usize, &x: &u64| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x.wrapping_mul(0x9E3779B97F4A7C15)
        };
        let mut seq: Vec<(usize, u64)> = Vec::new();
        par_for_each_ordered_labeled(&items, 1, "ord-test", work, |i, r| seq.push((i, r)));
        let mut par: Vec<(usize, u64)> = Vec::new();
        par_for_each_ordered_labeled(&items, 8, "ord-test", work, |i, r| par.push((i, r)));
        assert_eq!(seq, par);
        assert!(
            par.windows(2).all(|w| w[0].0 + 1 == w[1].0),
            "gapless order"
        );
        assert_eq!(par[0], (0, 0));
        assert_eq!(par.len(), items.len());
    }

    #[test]
    fn ordered_streaming_handles_empty_and_singleton() {
        let none: Vec<u8> = vec![];
        let mut hits = 0usize;
        par_for_each_ordered_labeled(&none, 4, "ord-test", |_, &x| x, |_, _| hits += 1);
        assert_eq!(hits, 0);
        let mut got = Vec::new();
        par_for_each_ordered_labeled(
            &[9u8],
            4,
            "ord-test",
            |_, &x| x + 1,
            |i, r| got.push((i, r)),
        );
        assert_eq!(got, vec![(0, 10)]);
    }

    #[test]
    fn labeled_workers_carry_their_thread_name() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_threads_labeled(&items, 4, Some("label-test"), |_, &x| {
            let name = std::thread::current()
                .name()
                .expect("worker thread is named")
                .to_string();
            assert!(name.starts_with("label-test-"), "{name}");
            x + 1
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[5], 6);
    }
}
