//! The synchronise-and-stop (SaS) coordinated protocol.
//!
//! §4.1 of the paper: in SaS all processes stop during checkpointing, so
//! the collection of wave checkpoints is trivially a recovery line; the
//! coordinator broadcasts three messages per wave and every other
//! process sends two replies, all 8-bit control messages, giving
//! `M(SaS) = 5(n−1)(w_m + 8·w_b)` of message overhead per wave, plus the
//! quiesce stall while everyone synchronises.
//!
//! Modelling: waves occur at multiples of the checkpoint interval `T`;
//! every process takes a [`CkptTrigger::Coordinated`](acfc_sim::CkptTrigger) checkpoint at the
//! wave boundary, stalled by the synchronisation cost; the control
//! messages are charged to the metrics on the coordinator (counted once
//! per wave, not once per process). Application `checkpoint` statements
//! are suppressed — SaS brings its own schedule.

use acfc_sim::{CoordinationCost, Hooks, NetworkModel, SimTime};

/// Per-wave control-message count: `5(n−1)` (three broadcast legs plus
/// two replies from each of the `n−1` participants).
pub fn sas_control_messages(n: usize) -> u64 {
    5 * (n as u64 - 1)
}

/// Per-wave message overhead `M(SaS)` in microseconds, with 8-bit
/// control messages.
pub fn sas_message_overhead_us(n: usize, net: &NetworkModel) -> u64 {
    sas_control_messages(n) * net.base_delay_us(8)
}

/// SaS protocol hooks.
#[derive(Debug, Clone)]
pub struct SyncAndStop {
    nprocs: usize,
    interval_us: u64,
    next_wave: Vec<u64>,
    /// Stall imposed on every process per wave (the stop-the-world
    /// synchronisation): two control round-trips by default.
    pub sync_stall_us: u64,
    /// Control bits per message (the paper's 8-bit program messages).
    pub control_bits: u64,
}

impl SyncAndStop {
    /// A SaS schedule with waves every `interval_us`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_us == 0` or `nprocs == 0`.
    pub fn new(nprocs: usize, interval_us: u64, net: NetworkModel) -> SyncAndStop {
        assert!(interval_us > 0, "interval must be positive");
        assert!(nprocs > 0, "need at least one process");
        let rt = net.base_delay_us(8);
        SyncAndStop {
            nprocs,
            interval_us,
            next_wave: vec![interval_us; nprocs],
            // Stop + checkpoint + resume: the coordinator exchanges
            // ~4 one-way control legs with the slowest participant.
            sync_stall_us: 4 * rt,
            control_bits: 8,
        }
    }
}

impl Hooks for SyncAndStop {
    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    fn timer_trigger(&mut self, _p: usize) -> acfc_sim::CkptTrigger {
        acfc_sim::CkptTrigger::Coordinated
    }

    fn timer_checkpoint_due(&mut self, p: usize, now: SimTime) -> bool {
        if now.as_micros() >= self.next_wave[p] {
            let mut due = self.next_wave[p];
            while due <= now.as_micros() {
                due += self.interval_us;
            }
            self.next_wave[p] = due;
            true
        } else {
            false
        }
    }

    fn coordination_cost(&mut self, p: usize, _now: SimTime) -> CoordinationCost {
        acfc_obs::count("protocols/sas/coordination_stall_us", self.sync_stall_us);
        if p == 0 {
            acfc_obs::count(
                "protocols/sas/control_messages",
                sas_control_messages(self.nprocs),
            );
        }
        CoordinationCost {
            stall_us: self.sync_stall_us,
            // Charge the wave's control traffic once, on the coordinator.
            control_messages: if p == 0 {
                sas_control_messages(self.nprocs)
            } else {
                0
            },
            control_bits: if p == 0 {
                sas_control_messages(self.nprocs) * self.control_bits
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_sim::{compile, run_with_hooks, CkptTrigger, SimConfig};

    #[test]
    fn control_message_formula() {
        assert_eq!(sas_control_messages(2), 5);
        assert_eq!(sas_control_messages(10), 45);
        let net = NetworkModel {
            setup_us: 100,
            per_bit_ns: 1000, // 1 µs per bit
            jitter_us: 0,
        };
        // (w_m + 8 w_b) = 108 µs; 5(n-1) with n=3 → 10 messages.
        assert_eq!(sas_message_overhead_us(3, &net), 10 * 108);
    }

    #[test]
    fn waves_checkpoint_every_process() {
        let p = acfc_mpsl::programs::jacobi(8);
        let cfg = SimConfig::new(4);
        let mut hooks = SyncAndStop::new(4, 50_000, cfg.net.clone());
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        assert_eq!(t.metrics.app_checkpoints, 0);
        assert!(t.metrics.coordinated_checkpoints > 0);
        // Each process checkpointed the same number of waves (±1 at the
        // end of the run).
        let counts = t.checkpoint_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "{counts:?}");
        assert!(t
            .checkpoints
            .iter()
            .all(|c| c.trigger == CkptTrigger::Coordinated));
    }

    #[test]
    fn control_traffic_charged_once_per_wave() {
        let p = acfc_mpsl::programs::jacobi(8);
        let cfg = SimConfig::new(4);
        let mut hooks = SyncAndStop::new(4, 50_000, cfg.net.clone());
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        let waves = t
            .checkpoints
            .iter()
            .filter(|c| c.proc == 0 && !c.rolled_back)
            .count() as u64;
        assert_eq!(t.metrics.control_messages, waves * sas_control_messages(4));
        assert_eq!(t.metrics.control_bits, waves * sas_control_messages(4) * 8);
    }

    #[test]
    fn stall_slows_down_the_run() {
        let p = acfc_mpsl::programs::jacobi(6);
        let cfg = SimConfig::new(2);
        let base = acfc_sim::run(&compile(&p), &cfg);
        let mut hooks = SyncAndStop::new(2, 30_000, cfg.net.clone());
        hooks.sync_stall_us = 20_000; // exaggerated, but below the interval
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        assert!(t.finished_at > base.finished_at);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = SyncAndStop::new(2, 0, NetworkModel::default());
    }
}
