//! Empirical protocol sweeps on the message-level simulator — the
//! measured companion to the analytic Figure 8.
//!
//! The paper's Figure 8 evaluates the protocols through the §4 model;
//! this module runs the same comparison on the simulator, sweeping the
//! process count (with a failure rate scaled per the paper's
//! `λ(n) ∝ n`) and reporting the *measured* overhead ratio of each
//! protocol against a bare, checkpoint-free run.

use crate::compare::{run_protocol, stats_json, CompareConfig, ProtocolKind, RunStats};
use acfc_mpsl::{programs, Program};
use acfc_sim::{FailurePlan, SimConfig, SimTime};
use acfc_util::parallel::par_map_labeled;
use std::fmt::Write;

/// Configuration of an empirical sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Process counts to sweep.
    pub ns: Vec<usize>,
    /// Checkpoint interval for the timer/wave protocols, µs.
    pub interval_us: u64,
    /// Per-process failure rate per *second of simulated time*; the
    /// plan is drawn over the failure-free makespan (so the expected
    /// failure count grows with `n`, matching the paper's scaling).
    pub lambda_per_proc: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Workload factory (receives `n`, returns the program to run).
    pub workload: fn(usize) -> Program,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            ns: vec![2, 4, 8],
            interval_us: 60_000,
            lambda_per_proc: 1.0, // ~1 failure/s of simulated time/proc
            seed: 0xACFC,
            workload: |_| programs::jacobi(10),
        }
    }
}

/// One sweep row: a protocol's stats at one `n`.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Process count.
    pub n: usize,
    /// Measured stats.
    pub stats: RunStats,
}

/// Runs the sweep: for each `n`, each protocol runs the same workload
/// with the same failure plan (drawn at rate `n·λ` over a horizon of
/// roughly the failure-free makespan).
///
/// The per-`n` columns are independent — everything inside one is
/// derived from `config.seed` and `n` — so they run on
/// [`acfc_util::parallel::par_map`] worker threads (`ACFC_THREADS`
/// overrides) and are flattened back in `ns` order: the report is
/// identical at any thread count.
pub fn empirical_sweep(config: &SweepConfig) -> Vec<SweepRow> {
    empirical_sweep_with(config, &config.workload)
}

/// Like [`empirical_sweep`] but with a caller-supplied workload
/// closure, so a program loaded at runtime (the `acfc compare --sweep`
/// path) can be swept without fitting the `fn(usize) -> Program`
/// factory shape.
pub fn empirical_sweep_with(
    config: &SweepConfig,
    workload: &(dyn Fn(usize) -> Program + Sync),
) -> Vec<SweepRow> {
    let columns = par_map_labeled(&config.ns, "sweep", |_, &n| {
        let program = workload(n);
        // Probe the failure-free makespan to size the failure horizon.
        let probe = acfc_sim::run(
            &acfc_sim::compile(&program),
            &SimConfig::new(n).with_seed(config.seed),
        );
        let horizon = SimTime(probe.finished_at.as_micros().max(1));
        let plan =
            FailurePlan::exponential(n, config.lambda_per_proc, horizon, config.seed ^ n as u64);
        let mut cc = CompareConfig::new(n, config.interval_us);
        cc.sim = cc.sim.with_seed(config.seed);
        cc.failures = plan;
        ProtocolKind::all()
            .into_iter()
            .map(|kind| SweepRow {
                n,
                stats: run_protocol(&program, kind, &cc),
            })
            .collect::<Vec<_>>()
    });
    columns.into_iter().flatten().collect()
}

/// Renders the sweep as a TSV table (`n`, protocol, ratio, checkpoints,
/// forced, control messages, coordination stall, failures, lost ms,
/// latency percentile bounds).
pub fn render_sweep(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "n\tprotocol\tratio\tckpts\tforced\tctrl_msgs\tcoord_ms\tfails\tlost_ms\t\
         lat_p50_us\tlat_p90_us\tlat_p99_us\n",
    );
    for r in rows {
        let s = &r.stats;
        let q = s.latency_percentiles();
        let _ = writeln!(
            out,
            "{}\t{}\t{:.4}\t{}\t{}\t{}\t{:.1}\t{}\t{:.1}\t{}\t{}\t{}",
            r.n,
            s.protocol.name(),
            s.overhead_ratio,
            s.checkpoints,
            s.forced,
            s.control_messages,
            s.coord_stall_us as f64 / 1000.0,
            s.failures,
            s.lost_us as f64 / 1000.0,
            q.p50,
            q.p90,
            q.p99,
        );
    }
    out
}

/// Serialises the sweep as one machine-readable JSON document: the
/// workload name plus a `runs` array with one flat object per
/// (`n`, protocol) pair — the artifact behind `acfc compare --sweep
/// --json`.
pub fn render_sweep_json(workload: &str, rows: &[SweepRow]) -> String {
    let runs: Vec<String> = rows
        .iter()
        .map(|r| {
            stats_json(r.n, &r.stats)
                .lines()
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    acfc_util::bench::Json::new()
        .str("workload", workload)
        .raw("runs", format!("[\n  {}\n  ]", runs.join(",\n  ")))
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_rows_and_completes() {
        let config = SweepConfig {
            ns: vec![2, 4],
            lambda_per_proc: 0.5,
            ..SweepConfig::default()
        };
        let rows = empirical_sweep(&config);
        assert_eq!(rows.len(), 2 * 5);
        for r in &rows {
            assert!(
                r.stats.completed,
                "{} at n={} did not complete",
                r.stats.protocol.name(),
                r.n
            );
            assert!(r.stats.overhead_ratio.is_finite());
        }
        let tsv = render_sweep(&rows);
        assert_eq!(tsv.lines().count(), 11);
        assert!(tsv.contains("appl-driven"));
        assert!(tsv.contains("coord_ms"));
        assert!(tsv.contains("lat_p99_us"));
    }

    #[test]
    fn sweep_json_lists_every_run_with_percentiles() {
        let config = SweepConfig {
            ns: vec![2],
            lambda_per_proc: 0.2,
            ..SweepConfig::default()
        };
        let rows = empirical_sweep(&config);
        let json = render_sweep_json("jacobi", &rows);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workload\": \"jacobi\""));
        for kind in ProtocolKind::all() {
            assert!(json.contains(&format!("\"protocol\": \"{}\"", kind.name())));
        }
        assert_eq!(json.matches("\"msg_latency_p99_us\"").count(), 5);
        assert_eq!(json.matches("\"coord_stall_us\"").count(), 5);
    }

    #[test]
    fn sweep_with_runtime_workload_matches_factory_sweep() {
        let config = SweepConfig {
            ns: vec![2],
            lambda_per_proc: 0.5,
            ..SweepConfig::default()
        };
        let a = empirical_sweep(&config);
        let b = empirical_sweep_with(&config, &|_| programs::jacobi(10));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.n, y.n);
            assert_eq!(x.stats.protocol, y.stats.protocol);
            assert_eq!(x.stats.makespan_secs, y.stats.makespan_secs);
            assert_eq!(x.stats.control_messages, y.stats.control_messages);
        }
    }

    #[test]
    fn control_traffic_grows_with_n_for_coordinated_protocols_only() {
        let config = SweepConfig {
            ns: vec![2, 6],
            lambda_per_proc: 0.2,
            ..SweepConfig::default()
        };
        let rows = empirical_sweep(&config);
        let get = |n: usize, k: ProtocolKind| {
            rows.iter()
                .find(|r| r.n == n && r.stats.protocol == k)
                .unwrap()
        };
        assert_eq!(get(2, ProtocolKind::AppDriven).stats.control_messages, 0);
        assert_eq!(get(6, ProtocolKind::AppDriven).stats.control_messages, 0);
        assert!(
            get(6, ProtocolKind::ChandyLamport).stats.control_messages
                > get(2, ProtocolKind::ChandyLamport).stats.control_messages
        );
        assert!(
            get(6, ProtocolKind::SyncAndStop).stats.control_messages
                > get(2, ProtocolKind::SyncAndStop).stats.control_messages
        );
    }
}
