//! Scale-out empirical protocol sweeps with seed replication and
//! streaming aggregation — the measured companion to the analytic
//! Figure 8, at evaluation scale.
//!
//! The paper's §5 argument is that application-driven checkpointing
//! wins precisely as the process count and failure intensity grow; a
//! single seeded run per point cannot support that claim. Following the
//! replicated-trial methodology of checkpoint-interval studies (Daly;
//! Plank & Thomason), a [`SweepPlan`] describes a full evaluation
//! matrix — process counts up to `n = 64`, a failure-rate grid, a
//! workload matrix, and a seeds-per-cell replication factor — and
//! [`run_sweep`] executes it cell by cell on the labeled worker pool,
//! aggregating each cell's trials into mean/stddev/95% CI
//! ([`acfc_obs::CiAccum`]) and pooling latency histograms via
//! `LocalHist` merging.
//!
//! A *cell* is one `(workload, n, λ, protocol)` point; its trials
//! differ only in derived seeds, and every protocol in a
//! `(workload, n, λ)` column faces the **identical failure plans** —
//! the seeds deliberately exclude the protocol, so cross-protocol
//! deltas are paired, not confounded.
//!
//! Results stream through the [`RowSink`] trait instead of being
//! buffered: workers hand finished cells to a reorder buffer
//! ([`acfc_util::parallel::par_for_each_ordered_labeled`]) that emits
//! rows in plan order as the prefix completes, so the built-in sinks
//! ([`TableSink`], [`JsonlSink`], [`ProgressSink`]) observe the same
//! byte stream at any `ACFC_THREADS` — streaming *and* bit-identical.

use crate::cic::CicVariant;
use crate::compare::{
    bare_makespan, run_protocol_against, CompareConfig, ConfigError, ProtocolKind, RunStats,
    MAX_COMPARE_PROCS,
};
use acfc_mpsl::{programs, Program};
use acfc_obs::{CiAccum, CiSummary, HistSnapshot};
use acfc_sim::{FailurePlan, SimConfig, SimTime};
use acfc_util::bench::Json;
use acfc_util::parallel::{configured_threads, par_for_each_ordered_labeled, par_map_labeled};
use acfc_util::rng::mix64;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// A named workload: a factory from process count to program, so one
/// sweep can rank protocols across several applications (the paper's
/// workload matrix).
#[derive(Clone)]
pub struct Workload {
    name: String,
    make: Arc<dyn Fn(usize) -> Program + Send + Sync>,
}

impl Workload {
    /// A workload built from a factory closure.
    pub fn new(
        name: impl Into<String>,
        make: impl Fn(usize) -> Program + Send + Sync + 'static,
    ) -> Workload {
        Workload {
            name: name.into(),
            make: Arc::new(make),
        }
    }

    /// The default evaluation workload: 10-iteration Jacobi.
    pub fn jacobi() -> Workload {
        Workload::new("jacobi", |_| programs::jacobi(10))
    }

    /// The workload's display name (used in rows and artifacts).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiates the program for `n` processes.
    pub fn program(&self, n: usize) -> Program {
        (self.make)(n)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

/// A validated sweep evaluation matrix. Construct via
/// [`SweepPlan::builder`]; fields are private so every plan that exists
/// went through validation.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    ns: Vec<usize>,
    seeds_per_cell: u64,
    lambdas: Vec<f64>,
    workloads: Vec<Workload>,
    cic_variants: Vec<CicVariant>,
    interval_us: u64,
    seed: u64,
}

/// Builder for [`SweepPlan`] — named setters, explicit defaults, and
/// typed [`ConfigError`]s at [`build`](Self::build) instead of silent
/// clamping.
#[derive(Debug, Clone)]
pub struct SweepPlanBuilder {
    ns: Vec<usize>,
    seeds_per_cell: u64,
    lambdas: Vec<f64>,
    workloads: Option<Vec<Workload>>,
    cic_variants: Vec<CicVariant>,
    interval_us: u64,
    seed: u64,
    memory_budget_mib: u64,
}

impl SweepPlan {
    /// Starts a plan with the defaults: `ns = [2, 4, 8]`, 3 seeds per
    /// cell, failure-rate grid `[1.0]` (per-process failures/sec of
    /// simulated time), every CIC variant, 60 ms checkpoint interval,
    /// base seed `0xACFC`, and the [`Workload::jacobi`] workload if
    /// none is added.
    pub fn builder() -> SweepPlanBuilder {
        SweepPlanBuilder {
            ns: vec![2, 4, 8],
            seeds_per_cell: 3,
            lambdas: vec![1.0],
            workloads: None,
            cic_variants: CicVariant::all().to_vec(),
            interval_us: 60_000,
            seed: 0xACFC,
            memory_budget_mib: crate::compare::DEFAULT_MEMORY_BUDGET_MIB,
        }
    }

    /// Process counts, in sweep order.
    pub fn ns(&self) -> &[usize] {
        &self.ns
    }

    /// Seeded trials aggregated into each cell.
    pub fn seeds_per_cell(&self) -> u64 {
        self.seeds_per_cell
    }

    /// The per-process failure-rate grid (failures per second of
    /// simulated time; `0.0` = failure-free column).
    pub fn failure_rates(&self) -> &[f64] {
        &self.lambdas
    }

    /// The workload matrix.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The CIC variants on the protocol axis.
    pub fn cic_variants(&self) -> &[CicVariant] {
        &self.cic_variants
    }

    /// The protocol axis of the matrix: the four non-CIC baselines
    /// followed by the selected CIC variants, in [`CicVariant::all`]
    /// presentation order.
    pub fn protocols(&self) -> Vec<ProtocolKind> {
        ProtocolKind::base()
            .into_iter()
            .chain(self.cic_variants.iter().map(|&v| ProtocolKind::Cic(v)))
            .collect()
    }

    /// Checkpoint interval for the timer/wave protocols, µs.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Base RNG seed all trial seeds derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every cell of the matrix in plan order: workload-major, then
    /// process count, then failure rate, then protocol — the order rows
    /// stream out of [`run_sweep`].
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.total_cells());
        let protocols = self.protocols();
        for (w, _) in self.workloads.iter().enumerate() {
            for &n in &self.ns {
                for &lambda in &self.lambdas {
                    for &protocol in &protocols {
                        cells.push(CellSpec {
                            index: cells.len(),
                            workload: w,
                            n,
                            lambda,
                            protocol,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Number of cells in the matrix.
    pub fn total_cells(&self) -> usize {
        self.workloads.len()
            * self.ns.len()
            * self.lambdas.len()
            * (ProtocolKind::base().len() + self.cic_variants.len())
    }

    /// Number of simulator trials the plan will run (cells × seeds),
    /// not counting the shared bare-baseline runs.
    pub fn total_trials(&self) -> u64 {
        self.total_cells() as u64 * self.seeds_per_cell
    }

    /// The simulator seed of one trial. Derived from
    /// `(workload, n, trial)` only — deliberately independent of both
    /// the failure rate and the protocol, so every cell in a
    /// `(workload, n)` block replays the same jittered network and the
    /// shared bare baseline is exact for all of them.
    fn sim_seed(&self, w: usize, n: usize, trial: u64) -> u64 {
        mix64(self.seed ^ mix64(((w as u64) << 48) | ((n as u64) << 32) | trial))
    }

    /// The failure-plan seed of one trial: the sim seed refined by the
    /// failure-rate index. Protocol-independent, so every protocol
    /// in a `(workload, n, λ)` column faces identical failure plans.
    fn fail_seed(&self, w: usize, n: usize, lambda_idx: usize, trial: u64) -> u64 {
        mix64(self.sim_seed(w, n, trial) ^ ((lambda_idx as u64 + 1) << 56))
    }
}

impl SweepPlanBuilder {
    /// Process counts to sweep (kept in the given order).
    pub fn ns(mut self, ns: impl Into<Vec<usize>>) -> Self {
        self.ns = ns.into();
        self
    }

    /// Seeded trials per cell.
    pub fn seeds_per_cell(mut self, seeds: u64) -> Self {
        self.seeds_per_cell = seeds;
        self
    }

    /// Replaces the failure-rate grid (per-process failures per second
    /// of simulated time; `0.0` = a failure-free column). An empty grid
    /// is rejected at build.
    pub fn failure_rates(mut self, lambdas: impl Into<Vec<f64>>) -> Self {
        self.lambdas = lambdas.into();
        self
    }

    /// Adds one workload to the matrix.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workloads.get_or_insert_with(Vec::new).push(w);
        self
    }

    /// Replaces the workload matrix.
    pub fn workloads(mut self, ws: Vec<Workload>) -> Self {
        self.workloads = Some(ws);
        self
    }

    /// Replaces the CIC-variant axis (default: all four). Duplicates
    /// are dropped and [`CicVariant::all`] presentation order is
    /// restored at [`build`](Self::build); an empty selection sweeps
    /// only the four non-CIC baselines.
    pub fn cic_variants(mut self, variants: impl Into<Vec<CicVariant>>) -> Self {
        self.cic_variants = variants.into();
        self
    }

    /// Checkpoint interval for the timer/wave protocols, µs.
    pub fn interval_us(mut self, interval_us: u64) -> Self {
        self.interval_us = interval_us;
        self
    }

    /// Base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Memory budget for the per-run guardrail, MiB (default
    /// [`DEFAULT_MEMORY_BUDGET_MIB`](crate::compare::DEFAULT_MEMORY_BUDGET_MIB)).
    /// [`build`](Self::build) refuses any swept `n` whose estimated
    /// footprint ([`estimated_run_mib`](crate::compare::estimated_run_mib))
    /// exceeds it.
    pub fn memory_budget_mib(mut self, budget_mib: u64) -> Self {
        self.memory_budget_mib = budget_mib;
        self
    }

    /// Validates and produces the plan.
    pub fn build(self) -> Result<SweepPlan, ConfigError> {
        if self.ns.is_empty() {
            return Err(ConfigError::EmptyNs);
        }
        for &n in &self.ns {
            if n == 0 {
                return Err(ConfigError::ZeroProcs);
            }
            if n > MAX_COMPARE_PROCS {
                return Err(ConfigError::TooManyProcs {
                    n,
                    max: MAX_COMPARE_PROCS,
                });
            }
            let est_mib = crate::compare::estimated_run_mib(n);
            if est_mib > self.memory_budget_mib {
                return Err(ConfigError::MemoryGuardrail {
                    n,
                    est_mib,
                    budget_mib: self.memory_budget_mib,
                });
            }
        }
        if self.seeds_per_cell == 0 {
            return Err(ConfigError::ZeroSeeds);
        }
        if self.interval_us == 0 {
            return Err(ConfigError::ZeroInterval);
        }
        if self.lambdas.is_empty() {
            return Err(ConfigError::BadFailureRate(f64::NAN));
        }
        for &l in &self.lambdas {
            if !l.is_finite() || l < 0.0 {
                return Err(ConfigError::BadFailureRate(l));
            }
        }
        let workloads = match self.workloads {
            None => vec![Workload::jacobi()],
            Some(ws) if ws.is_empty() => return Err(ConfigError::NoWorkloads),
            Some(ws) => ws,
        };
        let cic_variants: Vec<CicVariant> = CicVariant::all()
            .into_iter()
            .filter(|v| self.cic_variants.contains(v))
            .collect();
        Ok(SweepPlan {
            ns: self.ns,
            seeds_per_cell: self.seeds_per_cell,
            lambdas: self.lambdas,
            workloads,
            cic_variants,
            interval_us: self.interval_us,
            seed: self.seed,
        })
    }
}

/// One cell of the sweep matrix: the coordinates a worker needs to run
/// its trials.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in plan order (the streaming emission order).
    pub index: usize,
    /// Index into [`SweepPlan::workloads`].
    pub workload: usize,
    /// Process count.
    pub n: usize,
    /// Per-process failure rate (failures/sec of simulated time).
    pub lambda: f64,
    /// Protocol under test.
    pub protocol: ProtocolKind,
}

/// One aggregate sweep row: a cell's seeded trials reduced to
/// mean/stddev/95% CI per metric plus the pooled latency histogram.
#[derive(Debug, Clone)]
pub struct AggRow {
    /// Workload name.
    pub workload: String,
    /// Process count.
    pub n: usize,
    /// Per-process failure rate.
    pub lambda: f64,
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Trials aggregated.
    pub seeds: u64,
    /// Trials that completed.
    pub completed: u64,
    /// Overhead ratio `makespan/bare − 1`.
    pub overhead_ratio: CiSummary,
    /// Paired overhead difference `protocol − appl-driven`, per seed.
    /// Because every protocol in a `(workload, n, λ)` column faces the
    /// identical failure plan, the per-trial difference cancels the
    /// shared failure noise and its CI is far tighter than the CI of
    /// either marginal mean; exactly zero for the appl-driven rows.
    pub d_overhead: CiSummary,
    /// Total checkpoints taken.
    pub checkpoints: CiSummary,
    /// Forced (communication-induced) checkpoints.
    pub forced: CiSummary,
    /// Protocol control messages.
    pub control_messages: CiSummary,
    /// Bits piggybacked on application messages (CIC family; zero for
    /// every other protocol).
    pub piggyback_bits: CiSummary,
    /// Coordination-only stall, ms.
    pub coord_stall_ms: CiSummary,
    /// Failures injected and survived.
    pub failures: CiSummary,
    /// Work lost to rollbacks, ms.
    pub lost_ms: CiSummary,
    /// Per-trial latency p50 bound, µs.
    pub lat_p50_us: CiSummary,
    /// Per-trial latency p99 bound, µs.
    pub lat_p99_us: CiSummary,
    /// Latency histogram pooled across all trials
    /// ([`HistSnapshot::merge`]): percentiles of the union multiset,
    /// complementing the per-trial CI columns.
    pub latency: HistSnapshot,
}

fn ci_json(s: &CiSummary) -> Json {
    let j = Json::new().num("mean", s.mean).num("stddev", s.stddev);
    match s.ci95_half {
        // Absent (seeds = 1) stays absent in the artifact — no NaN, no
        // sentinel zero a reader could mistake for a tight interval.
        Some(ci) => j.num("ci95", ci),
        None => j,
    }
}

impl AggRow {
    /// Aggregates one cell's trials. `stats` must all come from the
    /// same `(workload, n, λ, protocol)` cell, in trial order (the
    /// accumulation order is part of the bit-determinism pin).
    /// `paired_overhead` carries the appl-driven baseline's per-trial
    /// overhead ratios for the same `(workload, n, λ)` column and trial
    /// order; the paired-difference column accumulates over the common
    /// prefix, so an empty slice yields an empty `d_overhead`.
    pub fn from_trials(
        workload: &str,
        cell: &CellSpec,
        seeds: u64,
        stats: &[RunStats],
        paired_overhead: &[f64],
    ) -> AggRow {
        let mut overhead = CiAccum::new();
        let mut d_overhead = CiAccum::new();
        let mut checkpoints = CiAccum::new();
        let mut forced = CiAccum::new();
        let mut control = CiAccum::new();
        let mut piggyback = CiAccum::new();
        let mut coord = CiAccum::new();
        let mut failures = CiAccum::new();
        let mut lost = CiAccum::new();
        let mut lat_p50 = CiAccum::new();
        let mut lat_p99 = CiAccum::new();
        let mut latency = HistSnapshot::default();
        let mut completed = 0u64;
        for (i, s) in stats.iter().enumerate() {
            completed += u64::from(s.completed);
            overhead.push(s.overhead_ratio);
            if let Some(&base) = paired_overhead.get(i) {
                d_overhead.push(s.overhead_ratio - base);
            }
            checkpoints.push(s.checkpoints as f64);
            forced.push(s.forced as f64);
            control.push(s.control_messages as f64);
            piggyback.push(s.piggyback_bits as f64);
            coord.push(s.coord_stall_us as f64 / 1000.0);
            failures.push(s.failures as f64);
            lost.push(s.lost_us as f64 / 1000.0);
            let q = s.latency_percentiles();
            lat_p50.push(q.p50 as f64);
            lat_p99.push(q.p99 as f64);
            latency.merge(&s.latency);
        }
        AggRow {
            workload: workload.to_string(),
            n: cell.n,
            lambda: cell.lambda,
            protocol: cell.protocol,
            seeds,
            completed,
            overhead_ratio: overhead.summary(),
            d_overhead: d_overhead.summary(),
            checkpoints: checkpoints.summary(),
            forced: forced.summary(),
            control_messages: control.summary(),
            piggyback_bits: piggyback.summary(),
            coord_stall_ms: coord.summary(),
            failures: failures.summary(),
            lost_ms: lost.summary(),
            lat_p50_us: lat_p50.summary(),
            lat_p99_us: lat_p99.summary(),
            latency,
        }
    }

    /// The row as a flat-ish JSON object: scalar coordinates plus one
    /// `{mean, stddev, ci95}` object per metric (`ci95` absent when
    /// seeds < 2), pooled-histogram percentile bounds, and a bootstrap
    /// median ± 95% percentile interval over the pooled latency
    /// distribution (`lat_pool_median{,_lo,_hi}_us`; absent when no
    /// latency was pooled). Render with `render_line()` for JSONL.
    pub fn json(&self) -> Json {
        let pool = self.latency.percentiles();
        let boot = acfc_obs::bootstrap_median_ci(
            &self.latency,
            acfc_obs::BOOTSTRAP_RESAMPLES,
            BOOTSTRAP_SEED,
        );
        let mut j = Json::new()
            .str("workload", &self.workload)
            .num("n", self.n as f64)
            .num("lambda", self.lambda)
            .str("protocol", self.protocol.name())
            .num("seeds", self.seeds as f64)
            .num("completed", self.completed as f64)
            .raw(
                "overhead_ratio",
                ci_json(&self.overhead_ratio).render_line(),
            )
            .raw("d_overhead_ratio", ci_json(&self.d_overhead).render_line())
            .raw("checkpoints", ci_json(&self.checkpoints).render_line())
            .raw("forced_checkpoints", ci_json(&self.forced).render_line())
            .raw(
                "control_messages",
                ci_json(&self.control_messages).render_line(),
            )
            .raw(
                "piggyback_bits",
                ci_json(&self.piggyback_bits).render_line(),
            )
            .raw(
                "coord_stall_ms",
                ci_json(&self.coord_stall_ms).render_line(),
            )
            .raw("failures", ci_json(&self.failures).render_line())
            .raw("lost_ms", ci_json(&self.lost_ms).render_line())
            .raw("lat_p50_us", ci_json(&self.lat_p50_us).render_line())
            .raw("lat_p99_us", ci_json(&self.lat_p99_us).render_line())
            .num("lat_pool_p50_us", pool.p50 as f64)
            .num("lat_pool_p99_us", pool.p99 as f64);
        if let Some(m) = boot {
            j = j
                .num("lat_pool_median_us", m.median as f64)
                .num("lat_pool_median_lo_us", m.lo as f64)
                .num("lat_pool_median_hi_us", m.hi as f64);
        }
        j
    }
}

/// Fixed seed for the per-row latency bootstrap: output depends only on
/// the pooled histogram itself, keeping rows byte-identical at any
/// `ACFC_THREADS`.
const BOOTSTRAP_SEED: u64 = 0xACFC_B007;

/// Streaming progress for a sink: how far the emission has got.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Rows emitted so far, including the current one.
    pub emitted: usize,
    /// Total rows the plan will emit.
    pub total: usize,
    /// Wall-clock seconds since the sweep started.
    pub elapsed_secs: f64,
    /// Wall-clock µs the just-emitted cell spent inside its worker
    /// (compute only — queueing and reorder wait excluded).
    pub cell_wall_us: u64,
    /// Index of the worker that ran the cell (`0` when the sweep ran
    /// inline on the calling thread).
    pub worker: usize,
}

/// End-of-sweep totals.
#[derive(Debug, Clone, Copy)]
pub struct SweepSummary {
    /// Cells executed.
    pub cells: usize,
    /// Simulator trials executed (cells × seeds, excluding baselines).
    pub trials: u64,
    /// Wall-clock seconds for the whole sweep.
    pub elapsed_secs: f64,
}

impl SweepSummary {
    /// Sweep throughput in cells per second.
    pub fn cells_per_sec(&self) -> f64 {
        self.cells as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// A consumer of aggregate sweep rows, fed **in plan order, as cells
/// complete** — the streaming replacement for buffer-everything sweep
/// results. Rows arrive on the caller's thread, so sinks may hold
/// writers and mutable state without synchronisation.
pub trait RowSink {
    /// Called once before any row, with the plan about to run.
    fn begin(&mut self, _plan: &SweepPlan) {}

    /// Called once per cell, in plan order.
    fn row(&mut self, row: &AggRow, progress: &Progress);

    /// Called once after the last row.
    fn finish(&mut self, _summary: &SweepSummary) {}
}

/// Renders rows as an aligned, CI-annotated text table (`mean±ci95`
/// cells), streamed line by line.
pub struct TableSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> TableSink<W> {
    /// A table sink writing to `out`.
    pub fn new(out: W) -> TableSink<W> {
        TableSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> RowSink for TableSink<W> {
    fn begin(&mut self, _plan: &SweepPlan) {
        let _ = writeln!(
            self.out,
            "{:<10} {:>3} {:>5} {:<14} {:>15} {:>15} {:>13} {:>11} {:>13} {:>15} {:>13} {:>9} {:>13} {:>11} {:>11}",
            "workload",
            "n",
            "λ",
            "protocol",
            "ratio",
            "Δratio",
            "ckpts",
            "forced",
            "ctrl-msgs",
            "pb-bits",
            "coord-ms",
            "fails",
            "lost-ms",
            "lat-p50-µs",
            "lat-p99-µs",
        );
    }

    fn row(&mut self, r: &AggRow, _progress: &Progress) {
        let _ = writeln!(
            self.out,
            "{:<10} {:>3} {:>5.2} {:<14} {:>15} {:>15} {:>13} {:>11} {:>13} {:>15} {:>13} {:>9} {:>13} {:>11} {:>11}",
            r.workload,
            r.n,
            r.lambda,
            r.protocol.name(),
            r.overhead_ratio.render(3),
            r.d_overhead.render(3),
            r.checkpoints.render(1),
            r.forced.render(1),
            r.control_messages.render(1),
            r.piggyback_bits.render(0),
            r.coord_stall_ms.render(1),
            r.failures.render(1),
            r.lost_ms.render(1),
            r.lat_p50_us.render(0),
            r.lat_p99_us.render(0),
        );
    }

    fn finish(&mut self, summary: &SweepSummary) {
        let _ = writeln!(
            self.out,
            "{} cells, {} trials in {:.1}s ({:.2} cells/s)",
            summary.cells,
            summary.trials,
            summary.elapsed_secs,
            summary.cells_per_sec()
        );
    }
}

/// Writes one compact JSON object per row (JSONL), flushing after every
/// line so the artifact grows while the sweep runs.
pub struct JsonlSink<W: std::io::Write> {
    out: W,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// A JSONL sink writing to `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> RowSink for JsonlSink<W> {
    fn row(&mut self, r: &AggRow, _progress: &Progress) {
        let _ = writeln!(self.out, "{}", r.json().render_line());
        let _ = self.out.flush();
    }
}

/// Narrates progress with an ETA extrapolated from the *recent* cell
/// rate — pointed at stderr, it keeps long sweeps honest without
/// touching the machine-readable streams.
///
/// The rate is windowed over the last [`PROGRESS_WINDOW`] emissions
/// rather than averaged since the start: plans order cells small-n
/// first, so a global average taken while the n = 64 block runs would
/// still be dominated by the cheap n = 2 cells and undershoot the ETA
/// badly. Until the window has two points the global average is the
/// only signal, so it serves as the fallback.
pub struct ProgressSink<W: std::io::Write> {
    out: W,
    window: std::collections::VecDeque<(usize, f64)>,
}

/// Emissions the [`ProgressSink`] ETA rate is windowed over.
pub const PROGRESS_WINDOW: usize = 16;

impl<W: std::io::Write> ProgressSink<W> {
    /// A progress narrator writing to `out`.
    pub fn new(out: W) -> ProgressSink<W> {
        ProgressSink {
            out,
            window: std::collections::VecDeque::new(),
        }
    }

    /// Cells/sec over the retained window, falling back to the global
    /// average while fewer than two window points exist.
    fn rate(&self, p: &Progress) -> f64 {
        if let (Some(&(e0, t0)), Some(&(e1, t1))) = (self.window.front(), self.window.back()) {
            if e1 > e0 && t1 > t0 {
                return (e1 - e0) as f64 / (t1 - t0);
            }
        }
        if p.elapsed_secs > 0.0 {
            p.emitted as f64 / p.elapsed_secs
        } else {
            0.0
        }
    }
}

impl<W: std::io::Write> RowSink for ProgressSink<W> {
    fn begin(&mut self, plan: &SweepPlan) {
        let _ = writeln!(
            self.out,
            "sweep: {} cells × {} seeds = {} trials",
            plan.total_cells(),
            plan.seeds_per_cell(),
            plan.total_trials()
        );
    }

    fn row(&mut self, _r: &AggRow, p: &Progress) {
        self.window.push_back((p.emitted, p.elapsed_secs));
        if self.window.len() > PROGRESS_WINDOW {
            self.window.pop_front();
        }
        let rate = self.rate(p);
        let eta = if rate > 0.0 {
            (p.total - p.emitted) as f64 / rate
        } else {
            0.0
        };
        let _ = writeln!(
            self.out,
            "sweep: {}/{} cells ({:.0}%), {:.1}s elapsed, eta {:.1}s",
            p.emitted,
            p.total,
            p.emitted as f64 * 100.0 / p.total.max(1) as f64,
            p.elapsed_secs,
            eta
        );
        let _ = self.out.flush();
    }

    fn finish(&mut self, s: &SweepSummary) {
        let _ = writeln!(
            self.out,
            "sweep: done — {} cells in {:.1}s ({:.2} cells/s)",
            s.cells,
            s.elapsed_secs,
            s.cells_per_sec()
        );
    }
}

/// Buffers rows in memory — for callers (benches, tests) that want the
/// aggregate rows as values rather than a byte stream.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The rows, in plan order.
    pub rows: Vec<AggRow>,
}

impl RowSink for CollectSink {
    fn row(&mut self, r: &AggRow, _progress: &Progress) {
        self.rows.push(r.clone());
    }
}

/// Cells at least this multiple of the p99 cell wall time are flagged
/// as stragglers in the telemetry trailer.
pub const STRAGGLER_FACTOR: u64 = 2;

/// Slowest cells the telemetry trailer retains (straggler candidates).
const SLOWEST_KEPT: usize = 16;

/// One retained slow cell: plan coordinates plus its worker wall time.
#[derive(Debug, Clone)]
struct SlowCell {
    index: usize,
    workload: String,
    n: usize,
    lambda: f64,
    protocol: &'static str,
    wall_us: u64,
}

impl SlowCell {
    fn json(&self) -> Json {
        Json::new()
            .num("index", self.index as f64)
            .str("workload", &self.workload)
            .num("n", self.n as f64)
            .num("lambda", self.lambda)
            .str("protocol", self.protocol)
            .num("wall_us", self.wall_us as f64)
    }
}

/// Collects per-cell wall times, per-worker utilization, and straggler
/// candidates during a sweep, and appends **one** machine-readable
/// `{"type":"sweep_telemetry", ...}` JSONL line in
/// [`finish`](RowSink::finish) — after every row, so a `TelemetrySink`
/// sharing a file with a [`JsonlSink`] adds a trailer without
/// perturbing the byte-identical row stream above it.
///
/// The trailer carries wall-clock measurements and is therefore the
/// one deliberately non-deterministic line in the artifact; consumers
/// that byte-compare row streams should filter on the `type` key.
pub struct TelemetrySink<W: std::io::Write> {
    out: W,
    trials: u64,
    wall: acfc_obs::LocalHist,
    /// `(cells, busy_us)` per worker index, grown on demand.
    workers: Vec<(u64, u64)>,
    /// Slowest cells seen so far, wall-time-descending, bounded.
    slowest: Vec<SlowCell>,
}

impl<W: std::io::Write> TelemetrySink<W> {
    /// A telemetry sink writing its trailer line to `out`.
    pub fn new(out: W) -> TelemetrySink<W> {
        TelemetrySink {
            out,
            trials: 0,
            wall: acfc_obs::LocalHist::new(),
            workers: Vec::new(),
            slowest: Vec::new(),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> RowSink for TelemetrySink<W> {
    fn begin(&mut self, plan: &SweepPlan) {
        self.trials = plan.total_trials();
        self.wall.reset();
        self.workers.clear();
        self.slowest.clear();
    }

    fn row(&mut self, r: &AggRow, p: &Progress) {
        self.wall.record(p.cell_wall_us);
        if self.workers.len() <= p.worker {
            self.workers.resize(p.worker + 1, (0, 0));
        }
        let (cells, busy) = &mut self.workers[p.worker];
        *cells += 1;
        *busy += p.cell_wall_us;
        self.slowest.push(SlowCell {
            index: p.emitted - 1,
            workload: r.workload.clone(),
            n: r.n,
            lambda: r.lambda,
            protocol: r.protocol.name(),
            wall_us: p.cell_wall_us,
        });
        // Keep the bounded top by wall time; plan order breaks ties so
        // the retained set is stable under equal timings.
        self.slowest
            .sort_by_key(|c| (u64::MAX - c.wall_us, c.index));
        self.slowest.truncate(SLOWEST_KEPT);
    }

    fn finish(&mut self, s: &SweepSummary) {
        let q = self.wall.percentiles();
        let snap = self.wall.snap();
        let elapsed_us = (s.elapsed_secs * 1e6).max(1.0);
        let workers: Vec<String> = self
            .workers
            .iter()
            .enumerate()
            .map(|(k, &(cells, busy_us))| {
                Json::new()
                    .num("worker", k as f64)
                    .num("cells", cells as f64)
                    .num("busy_us", busy_us as f64)
                    .num("utilization", busy_us as f64 / elapsed_us)
                    .render_line()
            })
            .collect();
        let threshold = q.p99.saturating_mul(STRAGGLER_FACTOR);
        let stragglers: Vec<String> = self
            .slowest
            .iter()
            .filter(|c| c.wall_us > threshold)
            .map(|c| c.json().render_line())
            .collect();
        let slowest: Vec<String> = self
            .slowest
            .iter()
            .map(|c| c.json().render_line())
            .collect();
        let line = Json::new()
            .str("type", "sweep_telemetry")
            .num("cells", s.cells as f64)
            .num("trials", self.trials as f64)
            .num("elapsed_secs", s.elapsed_secs)
            .num("cells_per_sec", s.cells_per_sec())
            .num("cell_wall_p50_us", q.p50 as f64)
            .num("cell_wall_p99_us", q.p99 as f64)
            .num("cell_wall_max_us", snap.max as f64)
            .num("straggler_threshold_us", threshold as f64)
            .raw("workers", format!("[{}]", workers.join(",")))
            .raw("slowest_cells", format!("[{}]", slowest.join(",")))
            .raw("stragglers", format!("[{}]", stragglers.join(",")));
        let _ = writeln!(self.out, "{}", line.render_line());
        let _ = self.out.flush();
    }
}

/// Executes the plan on [`configured_threads`] workers
/// (`ACFC_THREADS` overrides), streaming aggregate rows to every sink
/// in plan order. See [`run_sweep_threads`].
pub fn run_sweep(plan: &SweepPlan, sinks: &mut [&mut dyn RowSink]) -> SweepSummary {
    run_sweep_threads(plan, configured_threads(), sinks)
}

/// A finished cell travelling from a worker to the reorder buffer:
/// the aggregate row plus the telemetry the emit side attaches to
/// [`Progress`].
struct CellOut {
    row: AggRow,
    wall_us: u64,
    worker: usize,
}

/// The calling worker's index, parsed from its `{label}-{k}` thread
/// name. `0` for unlabeled threads — in particular the calling thread
/// when the sweep runs inline (`threads <= 1`).
fn worker_index() -> usize {
    std::thread::current()
        .name()
        .and_then(|n| n.rsplit('-').next())
        .and_then(|k| k.parse().ok())
        .unwrap_or(0)
}

/// [`run_sweep`] with an explicit worker count.
///
/// Three phases, all on labeled scoped threads:
///
/// 1. **Baselines** (`sweep-base-k` workers): for every
///    `(workload, n)` block, each trial's bare (checkpoint-free,
///    failure-free) run — the overhead denominator *and* the failure
///    horizon. Computed once per block and shared by all its λ ×
///    protocol cells, instead of once per protocol run.
/// 2. **Paired reference** (`sweep-app-k` workers): the appl-driven
///    trials of every `(workload, n, λ)` column, computed once and
///    shared two ways — the appl-driven *cell* reuses them verbatim
///    (so this phase adds no net simulator work), and every other
///    protocol's cell diffs against them per trial to fill the
///    [`AggRow::d_overhead`] paired-difference column.
/// 3. **Cells** (`sweep-k` workers): work-stealing over
///    [`SweepPlan::cells`]; each worker runs its cell's trials in trial
///    order and reduces them to an [`AggRow`] locally. Finished rows
///    flow through a reorder buffer to the sinks in plan order, so the
///    emitted stream is bit-identical at any thread count while still
///    streaming during the run. Each cell's worker wall time and
///    worker index travel with the row via [`Progress`], feeding the
///    [`TelemetrySink`] without a second timing pass.
pub fn run_sweep_threads(
    plan: &SweepPlan,
    threads: usize,
    sinks: &mut [&mut dyn RowSink],
) -> SweepSummary {
    let t0 = Instant::now();
    for sink in sinks.iter_mut() {
        sink.begin(plan);
    }

    // Phase 1: shared per-(workload, n) baselines, one entry per trial:
    // (bare makespan secs, failure horizon µs).
    let blocks: Vec<(usize, usize)> = (0..plan.workloads.len())
        .flat_map(|w| plan.ns.iter().map(move |&n| (w, n)))
        .collect();
    let baselines: Vec<Vec<(f64, u64)>> = par_map_labeled(&blocks, "sweep-base", |_, &(w, n)| {
        let program = plan.workloads[w].program(n);
        (0..plan.seeds_per_cell)
            .map(|trial| {
                let sim = SimConfig::new(n).with_seed(plan.sim_seed(w, n, trial));
                let bare = bare_makespan(&program, &sim);
                (bare, (bare * 1e6) as u64)
            })
            .collect()
    });
    let baseline_of = |w: usize, n: usize| {
        let b = blocks
            .iter()
            .position(|&(bw, bn)| bw == w && bn == n)
            .expect("cell block exists");
        &baselines[b]
    };

    // The trials of one cell, in trial order — shared by the paired
    // reference phase (appl-driven) and the cell phase (all kinds).
    let run_cell = |w: usize, n: usize, lambda: f64, protocol: ProtocolKind| -> Vec<RunStats> {
        let program = plan.workloads[w].program(n);
        let lambda_idx = plan
            .lambdas
            .iter()
            .position(|&l| l == lambda)
            .expect("cell lambda is on the grid");
        let base = baseline_of(w, n);
        (0..plan.seeds_per_cell)
            .map(|trial| {
                let (bare_secs, horizon_us) = base[trial as usize];
                let failures = if lambda > 0.0 {
                    FailurePlan::exponential(
                        n,
                        lambda,
                        SimTime(horizon_us.max(1)),
                        plan.fail_seed(w, n, lambda_idx, trial),
                    )
                } else {
                    FailurePlan::none()
                };
                let cc = CompareConfig::builder(n)
                    .interval_us(plan.interval_us)
                    .seed(plan.sim_seed(w, n, trial))
                    .failures(failures)
                    .build()
                    .expect("plan validation covers the config");
                run_protocol_against(&program, protocol, &cc, bare_secs)
            })
            .collect()
    };

    // Phase 2: the appl-driven paired reference, one entry per
    // (workload, n, λ) column.
    let columns: Vec<(usize, usize, f64)> = (0..plan.workloads.len())
        .flat_map(|w| {
            plan.ns
                .iter()
                .flat_map(move |&n| plan.lambdas.iter().map(move |&lambda| (w, n, lambda)))
        })
        .collect();
    let app_stats: Vec<Vec<RunStats>> = par_map_labeled(&columns, "sweep-app", |_, &(w, n, l)| {
        run_cell(w, n, l, ProtocolKind::AppDriven)
    });
    let app_of = |w: usize, n: usize, lambda: f64| {
        let c = columns
            .iter()
            .position(|&(cw, cn, cl)| cw == w && cn == n && cl == lambda)
            .expect("cell column exists");
        &app_stats[c]
    };

    // Phase 3: the cells, streamed through the reorder buffer.
    let cells = plan.cells();
    let total = cells.len();
    let mut emitted = 0usize;
    par_for_each_ordered_labeled(
        &cells,
        threads,
        "sweep",
        |_, cell| {
            let _cell_span = acfc_obs::span("protocols/sweep/cell");
            let cell_t0 = Instant::now();
            let workload = &plan.workloads[cell.workload];
            let app = app_of(cell.workload, cell.n, cell.lambda);
            // The appl-driven cell *is* the paired reference: reuse its
            // trials instead of re-simulating them.
            let stats: Vec<RunStats> = if cell.protocol == ProtocolKind::AppDriven {
                app.clone()
            } else {
                run_cell(cell.workload, cell.n, cell.lambda, cell.protocol)
            };
            let paired: Vec<f64> = app.iter().map(|s| s.overhead_ratio).collect();
            let row =
                AggRow::from_trials(workload.name(), cell, plan.seeds_per_cell, &stats, &paired);
            CellOut {
                row,
                wall_us: cell_t0.elapsed().as_micros() as u64,
                worker: worker_index(),
            }
        },
        |_, out| {
            emitted += 1;
            let progress = Progress {
                emitted,
                total,
                elapsed_secs: t0.elapsed().as_secs_f64(),
                cell_wall_us: out.wall_us,
                worker: out.worker,
            };
            for sink in sinks.iter_mut() {
                sink.row(&out.row, &progress);
            }
        },
    );

    let summary = SweepSummary {
        cells: total,
        trials: plan.total_trials(),
        elapsed_secs: t0.elapsed().as_secs_f64(),
    };
    for sink in sinks.iter_mut() {
        sink.finish(&summary);
    }
    summary
}

/// Serialises aggregate rows as one JSON document (a `rows` array of
/// [`AggRow::json`] objects) — the buffered counterpart of the JSONL
/// stream for `--json` consumers.
pub fn render_agg_json(rows: &[AggRow]) -> String {
    let body: Vec<String> = rows.iter().map(|r| r.json().render_line()).collect();
    Json::new()
        .num("rows_len", rows.len() as f64)
        .raw("rows", format!("[\n  {}\n  ]", body.join(",\n  ")))
        .render()
}

// ---------------------------------------------------------------------
// Single-seed rows (the CLI's one-shot `--sweep` table/artifact shape).
// ---------------------------------------------------------------------

/// One sweep row: a protocol's stats at one `n` (single seed).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Process count.
    pub n: usize,
    /// Measured stats.
    pub stats: RunStats,
}

/// Renders single-seed rows as a TSV table (`n`, protocol, ratio,
/// checkpoints, forced, control messages, coordination stall, failures,
/// lost ms, latency percentile bounds).
pub fn render_sweep(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "n\tprotocol\tratio\tckpts\tforced\tctrl_msgs\tcoord_ms\tfails\tlost_ms\t\
         lat_p50_us\tlat_p90_us\tlat_p99_us\n",
    );
    for r in rows {
        let s = &r.stats;
        let q = s.latency_percentiles();
        let _ = writeln!(
            out,
            "{}\t{}\t{:.4}\t{}\t{}\t{}\t{:.1}\t{}\t{:.1}\t{}\t{}\t{}",
            r.n,
            s.protocol.name(),
            s.overhead_ratio,
            s.checkpoints,
            s.forced,
            s.control_messages,
            s.coord_stall_us as f64 / 1000.0,
            s.failures,
            s.lost_us as f64 / 1000.0,
            q.p50,
            q.p90,
            q.p99,
        );
    }
    out
}

/// The machine-readable single-seed comparison artifact: a workload
/// name plus one flat stats object per (`n`, protocol) run — typed,
/// where the former free function took a loose string and a slice.
#[derive(Debug, Clone)]
pub struct SweepArtifact {
    /// Workload display name.
    pub workload: String,
    /// The runs, in row order.
    pub runs: Vec<SweepRow>,
}

impl SweepArtifact {
    /// Bundles rows under a workload name.
    pub fn new(workload: impl Into<String>, runs: Vec<SweepRow>) -> SweepArtifact {
        SweepArtifact {
            workload: workload.into(),
            runs,
        }
    }

    /// Serialises the artifact as one JSON document (same schema the
    /// former `render_sweep_json` emitted: `workload` plus a `runs`
    /// array of flat per-run objects).
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                r.stats
                    .json(r.n)
                    .render()
                    .lines()
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        Json::new()
            .str("workload", &self.workload)
            .raw("runs", format!("[\n  {}\n  ]", runs.join(",\n  ")))
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan(seeds: u64) -> SweepPlan {
        SweepPlan::builder()
            .ns([2usize, 3])
            .seeds_per_cell(seeds)
            .failure_rates([0.0, 0.5])
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_and_validation() {
        let plan = SweepPlan::builder().build().unwrap();
        assert_eq!(plan.ns(), &[2, 4, 8]);
        assert_eq!(plan.seeds_per_cell(), 3);
        assert_eq!(plan.failure_rates(), &[1.0]);
        assert_eq!(plan.workloads().len(), 1);
        assert_eq!(plan.workloads()[0].name(), "jacobi");
        assert_eq!(plan.interval_us(), 60_000);
        assert_eq!(plan.cic_variants(), CicVariant::all());
        assert_eq!(plan.total_cells(), 3 * 8);
        assert_eq!(plan.total_trials(), 72);

        assert_eq!(
            SweepPlan::builder().ns(Vec::new()).build().unwrap_err(),
            ConfigError::EmptyNs
        );
        assert_eq!(
            SweepPlan::builder().ns([0usize]).build().unwrap_err(),
            ConfigError::ZeroProcs
        );
        assert_eq!(
            SweepPlan::builder().ns([4097usize]).build().unwrap_err(),
            ConfigError::TooManyProcs { n: 4097, max: 4096 }
        );
        // Within the cap but over a caller-tightened memory budget: the
        // guardrail refuses with the estimate it computed.
        assert_eq!(
            SweepPlan::builder()
                .ns([2048usize])
                .memory_budget_mib(16)
                .build()
                .unwrap_err(),
            ConfigError::MemoryGuardrail {
                n: 2048,
                est_mib: crate::compare::estimated_run_mib(2048),
                budget_mib: 16,
            }
        );
        // The full supported range passes the default budget.
        assert!(SweepPlan::builder().ns([4096usize]).build().is_ok());
        assert_eq!(
            SweepPlan::builder().seeds_per_cell(0).build().unwrap_err(),
            ConfigError::ZeroSeeds
        );
        assert_eq!(
            SweepPlan::builder().interval_us(0).build().unwrap_err(),
            ConfigError::ZeroInterval
        );
        assert_eq!(
            SweepPlan::builder()
                .failure_rates([-1.0])
                .build()
                .unwrap_err(),
            ConfigError::BadFailureRate(-1.0)
        );
        assert_eq!(
            SweepPlan::builder()
                .workloads(Vec::new())
                .build()
                .unwrap_err(),
            ConfigError::NoWorkloads
        );
    }

    #[test]
    fn cic_variant_axis_dedupes_and_canonicalizes_order() {
        let plan = SweepPlan::builder()
            .cic_variants(vec![CicVariant::Lazy, CicVariant::Bcs, CicVariant::Bcs])
            .build()
            .unwrap();
        assert_eq!(plan.cic_variants(), &[CicVariant::Bcs, CicVariant::Lazy]);
        assert_eq!(plan.total_cells(), 3 * (4 + 2));

        let none = SweepPlan::builder()
            .cic_variants(Vec::new())
            .build()
            .unwrap();
        assert_eq!(none.cic_variants(), &[] as &[CicVariant]);
        assert!(none
            .cells()
            .iter()
            .all(|c| !matches!(c.protocol, ProtocolKind::Cic(_))));
    }

    #[test]
    fn cells_enumerate_workload_major_plan_order() {
        let plan = tiny_plan(1);
        let cells = plan.cells();
        assert_eq!(cells.len(), 2 * 2 * 8);
        // Order: n-major over λ over protocol (single workload); the
        // protocol axis is the four baselines then the CIC variants.
        assert_eq!(cells[0].n, 2);
        assert_eq!(cells[0].lambda, 0.0);
        assert_eq!(cells[0].protocol, ProtocolKind::AppDriven);
        assert_eq!(cells[4].protocol, ProtocolKind::Cic(CicVariant::Index));
        assert_eq!(cells[7].protocol, ProtocolKind::Cic(CicVariant::Lazy));
        assert_eq!(cells[8].lambda, 0.5);
        assert_eq!(cells[16].n, 3);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn sweep_streams_rows_in_plan_order_with_cis() {
        let plan = tiny_plan(3);
        let mut collect = CollectSink::default();
        let mut table = TableSink::new(Vec::new());
        let summary = run_sweep_threads(&plan, 2, &mut [&mut collect, &mut table]);
        assert_eq!(summary.cells, plan.total_cells());
        assert_eq!(summary.trials, plan.total_trials());
        assert!(summary.cells_per_sec() > 0.0);
        assert_eq!(collect.rows.len(), plan.total_cells());
        for (row, cell) in collect.rows.iter().zip(plan.cells()) {
            assert_eq!(row.n, cell.n);
            assert_eq!(row.protocol, cell.protocol);
            assert_eq!(row.lambda, cell.lambda);
            assert_eq!(row.seeds, 3);
            assert_eq!(row.completed, 3, "{} n={}", row.protocol.name(), row.n);
            // 3 seeds ⇒ every CI column is present (never NaN).
            for ci in [
                &row.overhead_ratio,
                &row.forced,
                &row.control_messages,
                &row.coord_stall_ms,
                &row.lat_p50_us,
                &row.lat_p99_us,
            ] {
                assert_eq!(ci.count, 3);
                assert!(ci.mean.is_finite() && ci.stddev.is_finite());
                assert!(ci.ci95_half.is_some());
            }
            // Pooled histogram holds all three trials' messages.
            assert!(row.latency.count > 0);
        }
        let text = String::from_utf8(table.out).unwrap();
        assert!(text.contains("lat-p99-µs"));
        assert!(text.contains("appl-driven"));
        assert!(text.contains("cells/s"));
        // Failure-free λ=0 rows really saw no failures.
        let free = &collect.rows[0];
        assert_eq!(free.lambda, 0.0);
        assert_eq!(free.failures.mean, 0.0);
    }

    #[test]
    fn seeds_one_rows_report_absent_cis() {
        let plan = SweepPlan::builder()
            .ns([2usize])
            .seeds_per_cell(1)
            .failure_rates([0.0])
            .build()
            .unwrap();
        let mut collect = CollectSink::default();
        let mut jsonl = JsonlSink::new(Vec::new());
        run_sweep_threads(&plan, 1, &mut [&mut collect, &mut jsonl]);
        assert_eq!(collect.rows.len(), 8);
        for row in &collect.rows {
            assert_eq!(row.overhead_ratio.ci95_half, None);
            assert_eq!(row.lat_p99_us.ci95_half, None);
        }
        let text = String::from_utf8(jsonl.out).unwrap();
        assert_eq!(text.lines().count(), 8);
        assert!(!text.contains("NaN"));
        assert!(!text.contains("ci95"));
        assert!(text.contains("\"lat_pool_p50_us\""));
        // The bootstrap median interval rides the pooled histogram, so
        // it exists even at seeds = 1 (the pool holds every message of
        // the single trial).
        assert!(text.contains("\"lat_pool_median_us\""));
        assert!(text.contains("\"lat_pool_median_lo_us\""));
        assert!(text.contains("\"lat_pool_median_hi_us\""));
    }

    #[test]
    fn bootstrap_median_columns_are_ordered_and_match_the_pool() {
        let plan = tiny_plan(2);
        let mut collect = CollectSink::default();
        run_sweep_threads(&plan, 1, &mut [&mut collect]);
        let mut saw_pooled = false;
        for row in &collect.rows {
            if row.latency.count == 0 {
                continue;
            }
            saw_pooled = true;
            let m = acfc_obs::bootstrap_median_ci(
                &row.latency,
                acfc_obs::BOOTSTRAP_RESAMPLES,
                super::BOOTSTRAP_SEED,
            )
            .expect("non-empty pool bootstraps");
            assert!(m.lo <= m.hi, "{:?}", m);
            // The reported median is the pool's own p50 bound.
            assert_eq!(m.median, row.latency.quantile_bound(0.5));
            // And the row's JSON carries exactly these values.
            let line = row.json().render_line();
            assert!(line.contains(&format!("\"lat_pool_median_us\":{}", m.median)));
            assert!(line.contains(&format!("\"lat_pool_median_lo_us\":{}", m.lo)));
            assert!(line.contains(&format!("\"lat_pool_median_hi_us\":{}", m.hi)));
        }
        assert!(saw_pooled);
    }

    #[test]
    fn protocols_in_a_column_share_failure_plans() {
        // Same (workload, n, λ, trial) ⇒ the failure seed is identical
        // for every protocol (it simply isn't an input), and differs
        // across trials and λ indices.
        let plan = tiny_plan(2);
        let a = plan.fail_seed(0, 2, 1, 0);
        assert_eq!(a, plan.fail_seed(0, 2, 1, 0));
        assert_ne!(a, plan.fail_seed(0, 2, 1, 1));
        assert_ne!(a, plan.fail_seed(0, 2, 0, 0));
        assert_ne!(a, plan.fail_seed(0, 3, 1, 0));
        // Failure counts paired: every protocol row in one (n, λ>0)
        // column reports the same mean failure count.
        let mut collect = CollectSink::default();
        run_sweep_threads(&plan, 2, &mut [&mut collect]);
        let failing: Vec<&AggRow> = collect
            .rows
            .iter()
            .filter(|r| r.n == 2 && r.lambda > 0.0)
            .collect();
        assert_eq!(failing.len(), 8);
        for r in &failing {
            assert_eq!(
                r.failures.mean,
                failing[0].failures.mean,
                "{} saw a different failure plan",
                r.protocol.name()
            );
        }
    }

    #[test]
    fn progress_sink_narrates_and_jsonl_grows_per_row() {
        let plan = SweepPlan::builder()
            .ns([2usize])
            .seeds_per_cell(1)
            .failure_rates([0.0])
            .build()
            .unwrap();
        let mut progress = ProgressSink::new(Vec::new());
        let mut jsonl = JsonlSink::new(Vec::new());
        run_sweep_threads(&plan, 1, &mut [&mut progress, &mut jsonl]);
        let text = String::from_utf8(progress.out).unwrap();
        assert!(text.contains("8 cells × 1 seeds"));
        assert!(text.contains("1/8 cells"));
        assert!(text.contains("8/8 cells"));
        assert!(text.contains("done"));
        for line in String::from_utf8(jsonl.out).unwrap().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn multi_workload_matrix_labels_rows() {
        let plan = SweepPlan::builder()
            .ns([2usize])
            .seeds_per_cell(1)
            .failure_rates([0.0])
            .workload(Workload::jacobi())
            .workload(Workload::new("pingpong", |_| programs::pingpong(4)))
            .build()
            .unwrap();
        let mut collect = CollectSink::default();
        run_sweep_threads(&plan, 2, &mut [&mut collect]);
        assert_eq!(collect.rows.len(), 16);
        assert!(collect.rows[..8].iter().all(|r| r.workload == "jacobi"));
        assert!(collect.rows[8..].iter().all(|r| r.workload == "pingpong"));
    }

    /// The single-seed row shape the CLI streams: a table and a typed
    /// artifact built from the same `compare_all` stats.
    #[test]
    fn single_seed_rows_render_table_and_artifact() {
        let cc = CompareConfig::builder(2).build().unwrap();
        let program = programs::jacobi(10);
        let rows: Vec<SweepRow> = ProtocolKind::all()
            .into_iter()
            .map(|kind| SweepRow {
                n: 2,
                stats: crate::compare::run_protocol(&program, kind, &cc),
            })
            .collect();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.stats.completed,
                "{} did not complete",
                r.stats.protocol.name()
            );
            assert!(r.stats.overhead_ratio.is_finite());
        }
        let tsv = render_sweep(&rows);
        assert_eq!(tsv.lines().count(), 9);
        assert!(tsv.contains("appl-driven"));
        let json = SweepArtifact::new("jacobi", rows).to_json();
        assert!(json.contains("\"workload\": \"jacobi\""));
        for kind in ProtocolKind::all() {
            assert!(json.contains(&format!("\"protocol\": \"{}\"", kind.name())));
        }
        assert_eq!(json.matches("\"msg_latency_p99_us\"").count(), 8);
    }

    #[test]
    fn render_agg_json_wraps_rows() {
        let plan = SweepPlan::builder()
            .ns([2usize])
            .seeds_per_cell(1)
            .failure_rates([0.0])
            .build()
            .unwrap();
        let mut collect = CollectSink::default();
        run_sweep_threads(&plan, 1, &mut [&mut collect]);
        let json = render_agg_json(&collect.rows);
        assert!(json.contains("\"rows_len\": 8"));
        assert!(json.contains("\"protocol\":\"appl-driven\""));
        assert!(json.contains("\"overhead_ratio\":{\"mean\":"));
        assert!(json.contains("\"d_overhead_ratio\":{\"mean\":"));
    }

    #[test]
    fn paired_difference_is_zero_for_appl_driven_and_consistent_elsewhere() {
        let plan = tiny_plan(3);
        let mut collect = CollectSink::default();
        run_sweep_threads(&plan, 2, &mut [&mut collect]);
        for row in &collect.rows {
            assert_eq!(row.d_overhead.count, 3);
            if row.protocol == ProtocolKind::AppDriven {
                // The appl-driven row diffs against itself: identically
                // zero, with a zero-width interval, in every column.
                assert_eq!(row.d_overhead.mean, 0.0);
                assert_eq!(row.d_overhead.stddev, 0.0);
            } else {
                // Paired means must agree with the marginal means: the
                // appl-driven mean plus the paired difference is the
                // protocol's own mean (same trials, exact arithmetic
                // up to float associativity).
                let app = collect
                    .rows
                    .iter()
                    .find(|r| {
                        r.protocol == ProtocolKind::AppDriven
                            && r.n == row.n
                            && r.lambda == row.lambda
                            && r.workload == row.workload
                    })
                    .expect("column has an appl-driven row");
                let reconstructed = app.overhead_ratio.mean + row.d_overhead.mean;
                assert!(
                    (reconstructed - row.overhead_ratio.mean).abs() < 1e-9,
                    "{}: {} + {} != {}",
                    row.protocol.name(),
                    app.overhead_ratio.mean,
                    row.d_overhead.mean,
                    row.overhead_ratio.mean
                );
            }
        }
    }

    #[test]
    fn telemetry_sink_appends_one_parseable_trailer_after_the_rows() {
        let plan = tiny_plan(2);
        let mut jsonl = JsonlSink::new(Vec::new());
        let mut telemetry = TelemetrySink::new(Vec::new());
        let summary = run_sweep_threads(&plan, 2, &mut [&mut jsonl, &mut telemetry]);
        // The row stream is untouched: same line count as cells.
        let rows = String::from_utf8(jsonl.out).unwrap();
        assert_eq!(rows.lines().count(), plan.total_cells());
        assert!(!rows.contains("sweep_telemetry"));
        // The trailer is exactly one line and carries the schema.
        let trailer = String::from_utf8(telemetry.into_inner()).unwrap();
        assert_eq!(trailer.lines().count(), 1);
        let line = trailer.lines().next().unwrap();
        assert!(line.starts_with("{\"type\":\"sweep_telemetry\""), "{line}");
        for key in [
            "\"cells\":",
            "\"trials\":",
            "\"elapsed_secs\":",
            "\"cells_per_sec\":",
            "\"cell_wall_p50_us\":",
            "\"cell_wall_p99_us\":",
            "\"cell_wall_max_us\":",
            "\"straggler_threshold_us\":",
            "\"workers\":[",
            "\"slowest_cells\":[",
            "\"stragglers\":[",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(line.contains(&format!("\"cells\":{}", summary.cells)));
        assert!(line.contains(&format!("\"trials\":{}", plan.total_trials())));
        // Worker attribution: cells distribute over the two workers
        // (or fewer if one finished the batch), never beyond them.
        assert!(line.contains("\"worker\":0"));
        assert!(line.contains("\"utilization\":"));
    }

    #[test]
    fn telemetry_worker_counts_cover_every_cell() {
        let plan = tiny_plan(1);
        let mut telemetry = TelemetrySink::new(Vec::new());
        run_sweep_threads(&plan, 3, &mut [&mut telemetry]);
        let total_cells: u64 = telemetry.workers.iter().map(|&(c, _)| c).sum();
        assert_eq!(total_cells as usize, plan.total_cells());
        assert!(telemetry.workers.len() <= 3);
        assert_eq!(telemetry.wall.snap().count as usize, plan.total_cells());
    }

    #[test]
    fn progress_eta_uses_the_windowed_rate() {
        // Feed a synthetic schedule where the first 20 cells were fast
        // (0.1 s each) and the window-covered recent cells are slow
        // (10 s each). The global average would predict ~2.6 s/cell;
        // the windowed rate must predict ~10 s/cell.
        let mut sink = ProgressSink::new(Vec::new());
        let row = {
            let plan = SweepPlan::builder()
                .ns([2usize])
                .seeds_per_cell(1)
                .failure_rates([0.0])
                .build()
                .unwrap();
            let mut collect = CollectSink::default();
            run_sweep_threads(&plan, 1, &mut [&mut collect]);
            collect.rows.remove(0)
        };
        let mut elapsed = 0.0;
        for emitted in 1..=40usize {
            elapsed += if emitted <= 20 { 0.1 } else { 10.0 };
            let p = Progress {
                emitted,
                total: 50,
                elapsed_secs: elapsed,
                cell_wall_us: 0,
                worker: 0,
            };
            sink.row(&row, &p);
        }
        let text = String::from_utf8(sink.out).unwrap();
        let last = text.lines().last().unwrap();
        let eta: f64 = last
            .split("eta ")
            .nth(1)
            .and_then(|s| s.strip_suffix('s'))
            .unwrap()
            .parse()
            .unwrap();
        // 10 cells remain at ~10 s/cell. The global average would say
        // ~51 s; accept the windowed neighbourhood of 100 s.
        assert!((eta - 100.0).abs() < 5.0, "eta {eta} not windowed");
    }
}
