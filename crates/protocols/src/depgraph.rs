//! The rollback-dependency graph and maximal consistent recovery lines.
//!
//! For *uncoordinated* checkpointing, nothing guarantees that the latest
//! checkpoints form a recovery line; recovery must search backwards.
//! The standard machinery (Elnozahy et al., survey \[10\] of the paper) is
//! the **rollback-dependency graph**: a message sent in interval
//! `I_{p,i}` and received in interval `I_{q,j}` makes checkpoint `C_q,j`
//! depend on `C_p,i`'s successor — rolling `p` back past the send forces
//! `q` back past the receive. Iterating this *rollback propagation* to a
//! fixpoint yields the **maximal consistent global checkpoint**; when it
//! cascades all the way to the initial states, that is the *domino
//! effect* the paper's introduction warns about.

use acfc_sim::{MessageRecord, RecoveryView, Trace};

/// Per-process interval structure extracted from a trace: the sorted
/// event steps of each live checkpoint.
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    /// `ckpt_steps[p]` = event-step of each live checkpoint of `p`, in
    /// sequence order (index 0 ↔ `seq` 1).
    pub ckpt_steps: Vec<Vec<u64>>,
}

impl IntervalIndex {
    /// Builds the index from a trace's live checkpoints.
    pub fn from_trace(trace: &Trace) -> IntervalIndex {
        IntervalIndex {
            ckpt_steps: (0..trace.nprocs)
                .map(|p| trace.live_checkpoints(p).iter().map(|c| c.step).collect())
                .collect(),
        }
    }

    /// Builds the index from an engine [`RecoveryView`].
    pub fn from_view(view: &RecoveryView<'_>) -> IntervalIndex {
        IntervalIndex {
            ckpt_steps: view
                .live
                .iter()
                .map(|v| v.iter().map(|c| c.step).collect())
                .collect(),
        }
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.ckpt_steps.len()
    }

    /// Number of live checkpoints of `p`.
    pub fn count(&self, p: usize) -> u64 {
        self.ckpt_steps[p].len() as u64
    }

    /// How many of `p`'s checkpoints precede the event with step
    /// `step` — i.e. the index of the interval the event belongs to
    /// (`0` = before the first checkpoint).
    pub fn interval_of(&self, p: usize, step: u64) -> u64 {
        // Steps are strictly increasing; count the checkpoints whose
        // step is smaller than the event's.
        self.ckpt_steps[p].partition_point(|&s| s < step) as u64
    }
}

/// Computes the maximal consistent global checkpoint by rollback
/// propagation: start from the latest checkpoints and, while some
/// message is an *orphan* with respect to the cut (sent after the
/// sender's cut checkpoint, received before the receiver's), move the
/// receiver's cut back before the receive. Returns, per process, the
/// number of checkpoints to keep (`0` = roll back to the initial
/// state).
///
/// The iteration is monotonically decreasing and therefore terminates;
/// the result is the unique maximal consistent cut (standard result for
/// rollback-dependency graphs).
pub fn max_consistent_line<'m>(
    index: &IntervalIndex,
    messages: impl Iterator<Item = &'m MessageRecord> + Clone,
) -> Vec<u64> {
    let mut cut: Vec<u64> = (0..index.nprocs()).map(|p| index.count(p)).collect();
    loop {
        let mut changed = false;
        for m in messages.clone() {
            if m.rolled_back {
                continue;
            }
            let Some(recv_step) = m.recv_step else {
                continue;
            };
            let send_int = index.interval_of(m.from, m.send_step);
            let recv_int = index.interval_of(m.to, recv_step);
            // Orphan w.r.t. the current cut: sent after the sender's cut
            // checkpoint, received before the receiver's.
            if send_int >= cut[m.from] && recv_int < cut[m.to] {
                cut[m.to] = recv_int;
                changed = true;
            }
        }
        if !changed {
            return cut;
        }
    }
}

/// Convenience wrapper over a finished trace.
pub fn max_consistent_line_of(trace: &Trace) -> Vec<u64> {
    let index = IntervalIndex::from_trace(trace);
    max_consistent_line(&index, trace.messages.iter())
}

/// A [`CutPicker`] that restores the maximal consistent line over the
/// live checkpoints, by rollback propagation. Coincides with
/// latest-per-process whenever the latest checkpoints already form a
/// recovery line (a tight coordinated wave), and backs off the minimal
/// amount when they do not — so a protocol using it never restores an
/// orphaning line, whatever its checkpoint schedule.
pub fn max_consistent_picker() -> acfc_sim::CutPicker {
    acfc_sim::CutPicker::Custom(Box::new(|view| {
        let index = IntervalIndex::from_view(view);
        let line = max_consistent_line(&index, view.messages.iter());
        line.into_iter()
            .map(|keep| if keep == 0 { None } else { Some(keep) })
            .collect()
    }))
}

/// Rollback depth per process implied by the maximal consistent line:
/// how many of its checkpoints each process must discard. A depth that
/// reaches the checkpoint count means full restart — the domino effect.
pub fn rollback_depths(trace: &Trace) -> Vec<u64> {
    let line = max_consistent_line_of(trace);
    (0..trace.nprocs)
        .map(|p| trace.live_checkpoints(p).len() as u64 - line[p])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::parse;
    use acfc_sim::{compile, run, run_with_hooks, SimConfig, TimerCheckpoints};

    #[test]
    fn interval_of_counts_preceding_checkpoints() {
        let idx = IntervalIndex {
            ckpt_steps: vec![vec![3, 7, 12]],
        };
        assert_eq!(idx.interval_of(0, 1), 0);
        assert_eq!(idx.interval_of(0, 4), 1);
        // The checkpoint's own step does not count as "before" itself
        // (messages never share steps with checkpoints, so this is a
        // convention, pinned here).
        assert_eq!(idx.interval_of(0, 7), 1);
        assert_eq!(idx.interval_of(0, 8), 2);
        assert_eq!(idx.interval_of(0, 13), 3);
        assert_eq!(idx.count(0), 3);
    }

    #[test]
    fn consistent_latest_checkpoints_survive() {
        // Uniform Jacobi: aligned checkpoints, no orphans at the latest
        // cut — the maximal line is the full set.
        let p = acfc_mpsl::programs::jacobi(4);
        let t = run(&compile(&p), &SimConfig::new(4));
        assert!(t.completed());
        let line = max_consistent_line_of(&t);
        assert_eq!(line, vec![4, 4, 4, 4]);
        assert_eq!(rollback_depths(&t), vec![0, 0, 0, 0]);
    }

    #[test]
    fn skewed_checkpoints_force_rollback() {
        // Ping-pong with skewed placement: rank 0 checkpoints between
        // send and recv, producing orphans at the latest cut.
        let p = acfc_mpsl::programs::pingpong_skewed(4);
        let t = run(&compile(&p), &SimConfig::new(2));
        assert!(t.completed());
        let depths = rollback_depths(&t);
        assert!(
            depths.iter().any(|&d| d > 0),
            "expected some rollback: {depths:?}"
        );
        // The line itself must be consistent: re-check by definition.
        let line = max_consistent_line_of(&t);
        let idx = IntervalIndex::from_trace(&t);
        for m in t.live_messages() {
            if let Some(rs) = m.recv_step {
                let orphan = idx.interval_of(m.from, m.send_step) >= line[m.from]
                    && idx.interval_of(m.to, rs) < line[m.to];
                assert!(!orphan, "line not consistent");
            }
        }
    }

    #[test]
    fn domino_effect_cascades_to_start() {
        // The classic zigzag: rank 0 checkpoints before each
        // request/reply exchange, rank 1 in the middle of it. Every
        // straight cut has an orphan request, and every staggered cut
        // an orphan reply: rollback propagation cascades all the way.
        let p = parse(
            "program domino; var i;
             for i in 0..6 {
               if rank == 0 {
                 checkpoint;
                 send to 1 size 64;
                 recv from 1;
               } else {
                 if rank == 1 {
                   recv from 0;
                   checkpoint;
                   send to 0 size 64;
                 }
               }
             }",
        )
        .unwrap();
        let t = run(&compile(&p), &SimConfig::new(2));
        assert!(t.completed());
        let line = max_consistent_line_of(&t);
        assert_eq!(line[1], 0, "line: {line:?}");
        assert!(line[0] <= 1, "line: {line:?}");
        let depths = rollback_depths(&t);
        assert_eq!(depths[1], 6);
    }

    #[test]
    fn timer_driven_uncoordinated_line_is_consistent() {
        // Independent timers (uncoordinated baseline): whatever the
        // line, it must satisfy the no-orphan definition.
        let p = acfc_mpsl::programs::ring(6, 2048);
        let mut hooks = TimerCheckpoints::new(3, 20_000, 7_000);
        let t = run_with_hooks(&compile(&p), &SimConfig::new(3), &mut hooks);
        assert!(t.completed());
        let line = max_consistent_line_of(&t);
        let idx = IntervalIndex::from_trace(&t);
        for m in t.live_messages() {
            if let Some(rs) = m.recv_step {
                assert!(
                    !(idx.interval_of(m.from, m.send_step) >= line[m.from]
                        && idx.interval_of(m.to, rs) < line[m.to])
                );
            }
        }
    }

    #[test]
    fn empty_trace_line_is_empty() {
        let p = parse("program t; compute 1;").unwrap();
        let t = run(&compile(&p), &SimConfig::new(2));
        assert_eq!(max_consistent_line_of(&t), vec![0, 0]);
        assert_eq!(rollback_depths(&t), vec![0, 0]);
    }
}
