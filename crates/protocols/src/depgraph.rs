//! The rollback-dependency graph and maximal consistent recovery lines.
//!
//! For *uncoordinated* checkpointing, nothing guarantees that the latest
//! checkpoints form a recovery line; recovery must search backwards.
//! The standard machinery (Elnozahy et al., survey \[10\] of the paper) is
//! the **rollback-dependency graph**: a message sent in interval
//! `I_{p,i}` and received in interval `I_{q,j}` makes checkpoint `C_q,j`
//! depend on `C_p,i`'s successor — rolling `p` back past the send forces
//! `q` back past the receive. Iterating this *rollback propagation* to a
//! fixpoint yields the **maximal consistent global checkpoint**; when it
//! cascades all the way to the initial states, that is the *domino
//! effect* the paper's introduction warns about.

use acfc_sim::{MessageRecord, RecoveryView, Trace};

/// Per-process interval structure extracted from a trace: the sorted
/// event steps of each live checkpoint.
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    /// `ckpt_steps[p]` = event-step of each live checkpoint of `p`, in
    /// sequence order (index 0 ↔ `seq` 1).
    pub ckpt_steps: Vec<Vec<u64>>,
}

impl IntervalIndex {
    /// Builds the index from a trace's live checkpoints.
    pub fn from_trace(trace: &Trace) -> IntervalIndex {
        IntervalIndex {
            ckpt_steps: (0..trace.nprocs)
                .map(|p| trace.live_checkpoints(p).iter().map(|c| c.step).collect())
                .collect(),
        }
    }

    /// Builds the index from an engine [`RecoveryView`].
    pub fn from_view(view: &RecoveryView<'_>) -> IntervalIndex {
        IntervalIndex {
            ckpt_steps: view
                .live
                .iter()
                .map(|v| v.iter().map(|c| c.step).collect())
                .collect(),
        }
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.ckpt_steps.len()
    }

    /// Number of live checkpoints of `p`.
    pub fn count(&self, p: usize) -> u64 {
        self.ckpt_steps[p].len() as u64
    }

    /// How many of `p`'s checkpoints precede the event with step
    /// `step` — i.e. the index of the interval the event belongs to
    /// (`0` = before the first checkpoint).
    pub fn interval_of(&self, p: usize, step: u64) -> u64 {
        // Steps are strictly increasing; count the checkpoints whose
        // step is smaller than the event's.
        self.ckpt_steps[p].partition_point(|&s| s < step) as u64
    }
}

/// Computes the maximal consistent global checkpoint by rollback
/// propagation: start from the latest checkpoints and, while some
/// message is an *orphan* with respect to the cut (sent after the
/// sender's cut checkpoint, received before the receiver's), move the
/// receiver's cut back before the receive. Returns, per process, the
/// number of checkpoints to keep (`0` = roll back to the initial
/// state).
///
/// The iteration is monotonically decreasing and therefore terminates;
/// the result is the unique maximal consistent cut (standard result for
/// rollback-dependency graphs).
pub fn max_consistent_line<'m>(
    index: &IntervalIndex,
    messages: impl Iterator<Item = &'m MessageRecord> + Clone,
) -> Vec<u64> {
    let start = (0..index.nprocs()).map(|p| index.count(p)).collect();
    max_consistent_line_from(index, messages, start)
}

/// Rollback propagation from an arbitrary starting cut: returns the
/// maximal consistent cut dominated by `start` (consistent cuts are
/// closed under join, so this is unique).
pub fn max_consistent_line_from<'m>(
    index: &IntervalIndex,
    messages: impl Iterator<Item = &'m MessageRecord> + Clone,
    start: Vec<u64>,
) -> Vec<u64> {
    let mut cut = start;
    loop {
        let mut changed = false;
        for m in messages.clone() {
            if m.rolled_back {
                continue;
            }
            let Some(recv_step) = m.recv_step else {
                continue;
            };
            let send_int = index.interval_of(m.from, m.send_step);
            let recv_int = index.interval_of(m.to, recv_step);
            // Orphan w.r.t. the current cut: sent after the sender's cut
            // checkpoint, received before the receiver's.
            if send_int >= cut[m.from] && recv_int < cut[m.to] {
                cut[m.to] = recv_int;
                changed = true;
            }
        }
        if !changed {
            return cut;
        }
    }
}

/// Convenience wrapper over a finished trace.
pub fn max_consistent_line_of(trace: &Trace) -> Vec<u64> {
    let index = IntervalIndex::from_trace(trace);
    max_consistent_line(&index, trace.messages.iter())
}

/// A [`CutPicker`] that restores the maximal consistent line over the
/// live checkpoints, by rollback propagation. Coincides with
/// latest-per-process whenever the latest checkpoints already form a
/// recovery line (a tight coordinated wave), and backs off the minimal
/// amount when they do not — so a protocol using it never restores an
/// orphaning line, whatever its checkpoint schedule.
pub fn max_consistent_picker() -> acfc_sim::CutPicker {
    acfc_sim::CutPicker::Custom(Box::new(|view| {
        let index = IntervalIndex::from_view(view);
        let line = max_consistent_line(&index, view.messages.iter());
        line.into_iter()
            .map(|keep| if keep == 0 { None } else { Some(keep) })
            .collect()
    }))
}

/// Useless checkpoints of a finished trace — the Z-cycle checker.
///
/// A checkpoint is **useful** iff it belongs to *some* consistent
/// global checkpoint, and by the Netzer–Xu theorem it is useful iff no
/// *zigzag cycle* passes through it. Zigzag paths are exactly paths in
/// the **interval graph**: one node per checkpoint interval `(p, k)`
/// (`k = 0` is `p`'s initial interval), an edge from each interval to
/// the process's next, and an edge `(from, send-interval) → (to,
/// recv-interval)` per live delivered message — the latter is what
/// encodes the zigzag liberty of leaving an interval *before* the
/// message that entered it arrived. A Z-cycle through `C_{p,i}` is a
/// path from `(p, i)` back to `(p, i-1)`, i.e. the two nodes sit in
/// one strongly connected component.
///
/// Returns `(process, i)` pairs in cut coordinates (`i` = 1-based
/// position among the process's live checkpoints), empty iff the trace
/// is Z-cycle-free. CIC protocols exist to make this always empty;
/// `domino`-shaped placements are the classic counterexample.
pub fn useless_checkpoints(trace: &Trace) -> Vec<(usize, u64)> {
    let index = IntervalIndex::from_trace(trace);
    useless_checkpoints_in(&index, trace.messages.iter())
}

/// [`useless_checkpoints`] over an explicit interval structure and
/// message set.
pub fn useless_checkpoints_in<'m>(
    index: &IntervalIndex,
    messages: impl Iterator<Item = &'m MessageRecord>,
) -> Vec<(usize, u64)> {
    let nprocs = index.nprocs();
    // Node (p, k) lives at offsets[p] + k, k in 0..=count(p).
    let mut offsets = Vec::with_capacity(nprocs);
    let mut total = 0usize;
    for p in 0..nprocs {
        offsets.push(total);
        total += index.count(p) as usize + 1;
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); total];
    for p in 0..nprocs {
        for k in 0..index.count(p) as usize {
            adj[offsets[p] + k].push((offsets[p] + k + 1) as u32);
        }
    }
    for m in messages {
        if m.rolled_back {
            continue;
        }
        let Some(recv_step) = m.recv_step else {
            continue;
        };
        let send_int = index.interval_of(m.from, m.send_step) as usize;
        let recv_int = index.interval_of(m.to, recv_step) as usize;
        adj[offsets[m.from] + send_int].push((offsets[m.to] + recv_int) as u32);
    }
    let comp = sccs(&adj);
    let mut useless = Vec::new();
    for p in 0..nprocs {
        for i in 1..=index.count(p) as usize {
            if comp[offsets[p] + i] == comp[offsets[p] + i - 1] {
                useless.push((p, i as u64));
            }
        }
    }
    useless
}

/// Independent oracle for [`useless_checkpoints`]: `C_{p,i}` is useful
/// iff rollback propagation from the cut that pins `p` at `i` (and
/// everyone else at the *virtual* checkpoint `count + 1`, their
/// volatile end-of-run state — the convention under which Netzer–Xu
/// holds, so a send after the last recorded checkpoint is not
/// spuriously orphaned) terminates without pushing `p` below `i` —
/// consistent cuts are closed under join, so if any consistent cut
/// contains the checkpoint, the maximal one dominated by that start
/// does too. The checker and this oracle reach the same verdicts
/// through disjoint machinery (SCCs vs. the orphan fixpoint); the
/// property suite holds them against each other.
pub fn useful_by_rollback<'m>(
    index: &IntervalIndex,
    messages: impl Iterator<Item = &'m MessageRecord> + Clone,
    p: usize,
    i: u64,
) -> bool {
    let mut start: Vec<u64> = (0..index.nprocs()).map(|q| index.count(q) + 1).collect();
    start[p] = i;
    max_consistent_line_from(index, messages, start)[p] == i
}

/// Iterative Tarjan: strongly connected component id per node.
fn sccs(adj: &[Vec<u32>]) -> Vec<u32> {
    const UNSEEN: u32 = u32::MAX;
    let n = adj.len();
    let mut comp = vec![UNSEEN; n];
    let mut order = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut frames: Vec<(u32, u32)> = Vec::new(); // (node, next child)
    let mut next_order = 0u32;
    let mut ncomp = 0u32;
    for root in 0..n {
        if order[root] != UNSEEN {
            continue;
        }
        frames.push((root as u32, 0));
        while let Some(frame) = frames.last_mut() {
            let (v, child) = *frame;
            let vu = v as usize;
            if child == 0 {
                order[vu] = next_order;
                low[vu] = next_order;
                next_order += 1;
                stack.push(v);
                on_stack[vu] = true;
            }
            if (child as usize) < adj[vu].len() {
                frame.1 += 1;
                let w = adj[vu][child as usize];
                let wu = w as usize;
                if order[wu] == UNSEEN {
                    frames.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(order[wu]);
                }
            } else {
                frames.pop();
                if low[vu] == order[vu] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
                if let Some(&mut (u, _)) = frames.last_mut() {
                    let uu = u as usize;
                    low[uu] = low[uu].min(low[vu]);
                }
            }
        }
    }
    comp
}

/// Rollback depth per process implied by the maximal consistent line:
/// how many of its checkpoints each process must discard. A depth that
/// reaches the checkpoint count means full restart — the domino effect.
pub fn rollback_depths(trace: &Trace) -> Vec<u64> {
    let line = max_consistent_line_of(trace);
    (0..trace.nprocs)
        .map(|p| trace.live_checkpoints(p).len() as u64 - line[p])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::parse;
    use acfc_sim::{compile, run, run_with_hooks, SimConfig, TimerCheckpoints};

    #[test]
    fn interval_of_counts_preceding_checkpoints() {
        let idx = IntervalIndex {
            ckpt_steps: vec![vec![3, 7, 12]],
        };
        assert_eq!(idx.interval_of(0, 1), 0);
        assert_eq!(idx.interval_of(0, 4), 1);
        // The checkpoint's own step does not count as "before" itself
        // (messages never share steps with checkpoints, so this is a
        // convention, pinned here).
        assert_eq!(idx.interval_of(0, 7), 1);
        assert_eq!(idx.interval_of(0, 8), 2);
        assert_eq!(idx.interval_of(0, 13), 3);
        assert_eq!(idx.count(0), 3);
    }

    #[test]
    fn consistent_latest_checkpoints_survive() {
        // Uniform Jacobi: aligned checkpoints, no orphans at the latest
        // cut — the maximal line is the full set.
        let p = acfc_mpsl::programs::jacobi(4);
        let t = run(&compile(&p), &SimConfig::new(4));
        assert!(t.completed());
        let line = max_consistent_line_of(&t);
        assert_eq!(line, vec![4, 4, 4, 4]);
        assert_eq!(rollback_depths(&t), vec![0, 0, 0, 0]);
    }

    #[test]
    fn skewed_checkpoints_force_rollback() {
        // Ping-pong with skewed placement: rank 0 checkpoints between
        // send and recv, producing orphans at the latest cut.
        let p = acfc_mpsl::programs::pingpong_skewed(4);
        let t = run(&compile(&p), &SimConfig::new(2));
        assert!(t.completed());
        let depths = rollback_depths(&t);
        assert!(
            depths.iter().any(|&d| d > 0),
            "expected some rollback: {depths:?}"
        );
        // The line itself must be consistent: re-check by definition.
        let line = max_consistent_line_of(&t);
        let idx = IntervalIndex::from_trace(&t);
        for m in t.live_messages() {
            if let Some(rs) = m.recv_step {
                let orphan = idx.interval_of(m.from, m.send_step) >= line[m.from]
                    && idx.interval_of(m.to, rs) < line[m.to];
                assert!(!orphan, "line not consistent");
            }
        }
    }

    #[test]
    fn domino_effect_cascades_to_start() {
        // The classic zigzag: rank 0 checkpoints before each
        // request/reply exchange, rank 1 in the middle of it. Every
        // straight cut has an orphan request, and every staggered cut
        // an orphan reply: rollback propagation cascades all the way.
        let p = parse(
            "program domino; var i;
             for i in 0..6 {
               if rank == 0 {
                 checkpoint;
                 send to 1 size 64;
                 recv from 1;
               } else {
                 if rank == 1 {
                   recv from 0;
                   checkpoint;
                   send to 0 size 64;
                 }
               }
             }",
        )
        .unwrap();
        let t = run(&compile(&p), &SimConfig::new(2));
        assert!(t.completed());
        let line = max_consistent_line_of(&t);
        assert_eq!(line[1], 0, "line: {line:?}");
        assert!(line[0] <= 1, "line: {line:?}");
        let depths = rollback_depths(&t);
        assert_eq!(depths[1], 6);
    }

    #[test]
    fn timer_driven_uncoordinated_line_is_consistent() {
        // Independent timers (uncoordinated baseline): whatever the
        // line, it must satisfy the no-orphan definition.
        let p = acfc_mpsl::programs::ring(6, 2048);
        let mut hooks = TimerCheckpoints::new(3, 20_000, 7_000);
        let t = run_with_hooks(&compile(&p), &SimConfig::new(3), &mut hooks);
        assert!(t.completed());
        let line = max_consistent_line_of(&t);
        let idx = IntervalIndex::from_trace(&t);
        for m in t.live_messages() {
            if let Some(rs) = m.recv_step {
                assert!(
                    !(idx.interval_of(m.from, m.send_step) >= line[m.from]
                        && idx.interval_of(m.to, rs) < line[m.to])
                );
            }
        }
    }

    #[test]
    fn empty_trace_line_is_empty() {
        let p = parse("program t; compute 1;").unwrap();
        let t = run(&compile(&p), &SimConfig::new(2));
        assert_eq!(max_consistent_line_of(&t), vec![0, 0]);
        assert_eq!(rollback_depths(&t), vec![0, 0]);
    }

    #[test]
    fn domino_checkpoints_are_useless() {
        // The domino program is the canonical Z-cycle factory: every
        // checkpoint of rank 1 sits inside a request/reply zigzag, so
        // none of them can ever join a consistent cut.
        let p = parse(
            "program domino; var i;
             for i in 0..6 {
               if rank == 0 {
                 checkpoint;
                 send to 1 size 64;
                 recv from 1;
               } else {
                 if rank == 1 {
                   recv from 0;
                   checkpoint;
                   send to 0 size 64;
                 }
               }
             }",
        )
        .unwrap();
        let t = run(&compile(&p), &SimConfig::new(2));
        assert!(t.completed());
        let useless = useless_checkpoints(&t);
        assert!(!useless.is_empty(), "domino placements must be on Z-cycles");
        // Rank 1's inner checkpoints are all on Z-cycles.
        let rank1: Vec<u64> = useless
            .iter()
            .filter(|&&(p, _)| p == 1)
            .map(|&(_, i)| i)
            .collect();
        assert!(!rank1.is_empty(), "useless: {useless:?}");
    }

    #[test]
    fn aligned_checkpoints_are_all_useful() {
        let p = acfc_mpsl::programs::jacobi(6);
        let t = run(&compile(&p), &SimConfig::new(4));
        assert!(t.completed());
        assert_eq!(useless_checkpoints(&t), Vec::new());
    }

    #[test]
    fn checker_agrees_with_the_rollback_oracle() {
        // Differential pin: SCC membership (Netzer–Xu) and the
        // lattice-fixpoint oracle (is the checkpoint on *some*
        // consistent cut?) must classify every checkpoint identically,
        // on both a Z-cycle-free and a Z-cycle-rich trace.
        let progs = [
            acfc_mpsl::programs::jacobi(5),
            acfc_mpsl::programs::pingpong_skewed(6),
            acfc_mpsl::programs::master_worker(6),
        ];
        for (prog, n) in progs.iter().zip([4usize, 2, 3]) {
            let mut hooks = TimerCheckpoints::new(n, 25_000, 9_000);
            let t = run_with_hooks(&compile(prog), &SimConfig::new(n), &mut hooks);
            assert!(t.completed());
            let idx = IntervalIndex::from_trace(&t);
            let useless = useless_checkpoints(&t);
            for p in 0..idx.nprocs() {
                for i in 1..=idx.count(p) {
                    let on_cycle = useless.contains(&(p, i));
                    let useful = useful_by_rollback(&idx, t.messages.iter(), p, i);
                    assert_eq!(
                        useful, !on_cycle,
                        "({p}, {i}): oracle says useful={useful}, checker says on_cycle={on_cycle}"
                    );
                }
            }
        }
    }
}
