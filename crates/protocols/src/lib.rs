//! # Distributed checkpointing protocols on the ACFC simulator
//!
//! The paper positions its coordination-free approach against the three
//! classic families of distributed checkpointing (§1) and compares
//! analytically against the coordinated ones (§4.1). This crate makes
//! the comparison executable — every protocol runs real workloads on
//! the `acfc-sim` engine through its [`Hooks`](acfc_sim::Hooks):
//!
//! * [`app_driven`] — the paper's protocol: offline analysis
//!   (`acfc-core`), **no** runtime mechanism at all, straight-cut
//!   recovery;
//! * [`uncoordinated`] — independent timers + rollback-propagation
//!   recovery over the dependency graph ([`depgraph`]), exhibiting the
//!   domino effect ([`domino`]);
//! * [`sas`] — synchronise-and-stop coordinated waves,
//!   `M(SaS) = 5(n−1)(w_m + 8·w_b)`;
//! * [`chandy_lamport`] — distributed snapshots,
//!   `M(C-L) = 2n(n−1)(w_m + 8·w_b)`;
//! * [`cic`] — the communication-induced checkpointing family (the
//!   founding index-based member plus BCS, the vector-carrying HMNR,
//!   and lazy indexing) behind the [`CicIndexing`](cic::CicIndexing)
//!   trait, with forced checkpoints and Z-cycle-free guarantees;
//! * [`compare`] — the head-to-head harness producing measured
//!   overhead ratios (the empirical companion to Figures 8–9).
//!
//! ```
//! use acfc_protocols::compare::{compare_all, CompareConfig, ProtocolKind};
//!
//! let program = acfc_mpsl::programs::jacobi(5);
//! let config = CompareConfig::builder(4).interval_us(60_000).build().unwrap();
//! let stats = compare_all(&program, &config);
//! let app = stats.iter().find(|s| s.protocol == ProtocolKind::AppDriven).unwrap();
//! // The paper's claim: zero protocol traffic.
//! assert_eq!(app.control_messages, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app_driven;
pub mod chandy_lamport;
pub mod cic;
pub mod compare;
pub mod depgraph;
pub mod domino;
pub mod sas;
pub mod sweep;
pub mod uncoordinated;

pub use app_driven::AppDriven;
pub use chandy_lamport::{cl_control_messages, cl_message_overhead_us, ChandyLamport};
pub use cic::{CicIndexing, CicProtocol, CicVariant, IndexBasedCic};
pub use compare::{
    bare_makespan, compare_all, estimated_run_mib, render_table, run_protocol,
    run_protocol_against, run_protocol_timeline, CompareConfig, CompareConfigBuilder, ConfigError,
    ParseProtocolError, ProtocolKind, RunStats, DEFAULT_MEMORY_BUDGET_MIB, MAX_COMPARE_PROCS,
};
pub use depgraph::{
    max_consistent_line, max_consistent_line_from, max_consistent_line_of, max_consistent_picker,
    rollback_depths, useful_by_rollback, useless_checkpoints, useless_checkpoints_in,
    IntervalIndex,
};
pub use domino::{domino_report, domino_stream, DominoReport};
pub use sas::{sas_control_messages, sas_message_overhead_us, SyncAndStop};
pub use sweep::{
    render_agg_json, render_sweep, run_sweep, run_sweep_threads, AggRow, CellSpec, CollectSink,
    JsonlSink, Progress, ProgressSink, RowSink, SweepArtifact, SweepPlan, SweepPlanBuilder,
    SweepRow, SweepSummary, TableSink, TelemetrySink, Workload, PROGRESS_WINDOW, STRAGGLER_FACTOR,
};
pub use uncoordinated::{uncoordinated_hooks, uncoordinated_picker};
