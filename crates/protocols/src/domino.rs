//! Domino-effect analysis.
//!
//! §1 of the paper motivates against uncoordinated checkpointing with
//! the *domino effect*: independent checkpoints can be pairwise
//! orphaned so that rollback propagation cascades, in the worst case to
//! the initial states. This module quantifies the effect on traces and
//! provides a canonical adversarial workload that exhibits it, used by
//! the `domino_effect` example and the E2 experiment.

use crate::depgraph::{max_consistent_line_of, rollback_depths};
use acfc_mpsl::{parse, Program};
use acfc_sim::Trace;

/// Summary of the domino behaviour of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DominoReport {
    /// Live checkpoints per process.
    pub counts: Vec<u64>,
    /// The maximal consistent line (checkpoints kept per process).
    pub line: Vec<u64>,
    /// Checkpoints discarded per process.
    pub depths: Vec<u64>,
    /// `true` if some process must restart from its initial state
    /// despite having taken checkpoints.
    pub full_restart: bool,
}

/// Analyses the domino behaviour of a finished trace.
pub fn domino_report(trace: &Trace) -> DominoReport {
    let counts: Vec<u64> = trace
        .checkpoint_counts()
        .into_iter()
        .map(|c| c as u64)
        .collect();
    let line = max_consistent_line_of(trace);
    let depths = rollback_depths(trace);
    let full_restart = counts.iter().zip(&line).any(|(&c, &l)| c > 0 && l == 0);
    DominoReport {
        counts,
        line,
        depths,
        full_restart,
    }
}

/// The canonical domino workload — the classic request/reply zigzag:
/// per round, rank 0 checkpoints, sends a request, and awaits the
/// reply; rank 1 receives the request, checkpoints, and replies. Every
/// straight cut is orphaned by a request and every staggered cut by a
/// reply, so rollback propagation cascades to the initial state (the
/// textbook domino effect).
pub fn domino_stream(rounds: i64) -> Program {
    parse(&format!(
        "program domino_stream;
         param rounds = {rounds};
         var i;
         for i in 0..rounds {{
           if rank == 0 {{
             checkpoint \"pre-request\";
             compute 10;
             send to 1 size 128;
             recv from 1;
           }} else {{
             if rank == 1 {{
               recv from 0;
               checkpoint \"mid-exchange\";
               compute 10;
               send to 0 size 128;
             }} else {{
               compute 20;
               checkpoint;
             }}
           }}
         }}"
    ))
    .expect("domino_stream parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_driven::AppDriven;
    use acfc_sim::{compile, run, SimConfig};

    #[test]
    fn domino_stream_cascades_to_start() {
        let p = domino_stream(8);
        let t = run(&compile(&p), &SimConfig::new(2));
        assert!(t.completed());
        let rep = domino_report(&t);
        assert_eq!(rep.counts, vec![8, 8]);
        assert!(rep.full_restart, "{rep:?}");
        assert_eq!(rep.line[1], 0, "{rep:?}");
        assert_eq!(rep.depths[1], 8);
        assert!(rep.line[0] <= 1, "{rep:?}");
    }

    #[test]
    fn analysis_eliminates_the_domino_effect() {
        // After the paper's transformation, every straight cut is a
        // recovery line, so the maximal line keeps all checkpoints.
        let p = domino_stream(8);
        let ad = AppDriven::prepare(&p, 4).unwrap();
        let t = run(&ad.compiled, &SimConfig::new(2));
        assert!(t.completed());
        let rep = domino_report(&t);
        assert!(!rep.full_restart, "{rep:?}");
        assert!(
            rep.depths.iter().all(|&d| d == 0),
            "no rollback propagation after analysis: {rep:?}"
        );
    }

    #[test]
    fn uniform_placement_has_no_domino() {
        let p = acfc_mpsl::programs::jacobi(5);
        let t = run(&compile(&p), &SimConfig::new(4));
        let rep = domino_report(&t);
        assert!(!rep.full_restart);
        assert_eq!(rep.depths, vec![0, 0, 0, 0]);
        assert_eq!(rep.counts, rep.line);
    }
}
