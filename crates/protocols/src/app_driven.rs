//! The application-driven (coordination-free) protocol — the paper's
//! contribution, packaged as a runnable protocol.
//!
//! Offline: run the three-phase analysis of `acfc-core` on the program.
//! Online: nothing. Processes execute the transformed program and
//! checkpoint exactly at the analysis-placed statements; no control
//! messages, no forced checkpoints, no coordination stall. Recovery
//! rolls back to the straight cut of the deepest common checkpoint
//! index ([`CutPicker::AlignedSeq`]), which Theorem 3.2 guarantees to be
//! a recovery line.

use acfc_core::{analyze, Analysis, AnalysisConfig, AnalysisError};
use acfc_mpsl::Program;
use acfc_sim::{compile, Compiled, CutPicker, NoHooks};

/// A prepared application-driven deployment: the transformed program,
/// its compiled form, and the recovery picker to use.
#[derive(Debug)]
pub struct AppDriven {
    /// The full analysis result (report, extended CFG, moves).
    pub analysis: Analysis,
    /// Compiled transformed program, ready for the engine.
    pub compiled: Compiled,
}

impl AppDriven {
    /// Runs the offline analysis for `nprocs` processes and compiles
    /// the result.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the pipeline.
    pub fn prepare(program: &Program, nprocs: usize) -> Result<AppDriven, AnalysisError> {
        let analysis = analyze(program, &AnalysisConfig::for_nprocs(nprocs))?;
        let compiled = compile(&analysis.program);
        Ok(AppDriven { analysis, compiled })
    }

    /// The runtime hooks: none. That is the point of the paper.
    pub fn hooks(&self) -> NoHooks {
        NoHooks
    }

    /// The recovery-line picker: aligned straight cuts.
    pub fn picker(&self) -> CutPicker {
        CutPicker::AlignedSeq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_sim::{run_with_failures, FailurePlan, SimConfig, SimTime};

    #[test]
    fn prepared_protocol_has_zero_runtime_overhead_sources() {
        let p = acfc_mpsl::programs::jacobi_odd_even(5);
        let ad = AppDriven::prepare(&p, 4).unwrap();
        let cfg = SimConfig::new(4);
        let mut hooks = ad.hooks();
        let t = acfc_sim::run_with_hooks(&ad.compiled, &cfg, &mut hooks);
        assert!(t.completed());
        assert_eq!(t.metrics.control_messages, 0);
        assert_eq!(t.metrics.control_bits, 0);
        assert_eq!(t.metrics.forced_checkpoints, 0);
        assert_eq!(t.metrics.timer_checkpoints, 0);
        assert_eq!(t.metrics.coordinated_checkpoints, 0);
        assert!(t.metrics.app_checkpoints > 0);
    }

    #[test]
    fn recovery_from_aligned_cut_completes_after_failures() {
        let p = acfc_mpsl::programs::jacobi_odd_even(6);
        let ad = AppDriven::prepare(&p, 2).unwrap();
        let cfg = SimConfig::new(2);
        let mut hooks = ad.hooks();
        let plan = FailurePlan::at(vec![
            (SimTime::from_millis(120), 0),
            (SimTime::from_millis(260), 1),
        ]);
        let t = run_with_failures(&ad.compiled, &cfg, &mut hooks, plan, ad.picker());
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.failures.len(), 2);
        // The restored cuts were aligned: same seq in every process.
        for f in &t.failures {
            let seqs: Vec<_> = f.restored_seq.iter().flatten().collect();
            assert!(
                seqs.windows(2).all(|w| w[0] == w[1]),
                "{:?}",
                f.restored_seq
            );
        }
    }

    #[test]
    fn analysis_report_travels_with_the_protocol() {
        let p = acfc_mpsl::programs::pipeline_skewed(4);
        let ad = AppDriven::prepare(&p, 4).unwrap();
        assert!(!ad.analysis.moves.is_empty());
        assert!(ad.analysis.report().contains("relocation"));
    }
}
