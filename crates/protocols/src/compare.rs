//! Head-to-head protocol comparison on the simulator.
//!
//! The paper compares protocols analytically (§4, Figures 8–9); this
//! module runs the same comparison *empirically*: each protocol
//! executes the same workload on the same simulated network and cost
//! model, with the same injected failures, and reports its measured
//! overhead ratio `r = Γ/T_bare − 1` against a bare run with
//! checkpointing disabled entirely.

use crate::app_driven::AppDriven;
use crate::chandy_lamport::ChandyLamport;
use crate::cic::{CicProtocol, CicVariant};
use crate::depgraph::max_consistent_picker;
use crate::sas::SyncAndStop;
use crate::uncoordinated::{uncoordinated_hooks, uncoordinated_picker};
use acfc_mpsl::Program;
use acfc_obs::{HistSnapshot, Quantiles};
use acfc_sim::{
    compile, run_observed_with, run_with_hooks, FailurePlan, Hooks, SimConfig, SimObs, SimTime,
    Trace,
};

/// The protocols under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The paper's coordination-free protocol (offline analysis).
    AppDriven,
    /// Independent local timers, rollback-propagation recovery.
    Uncoordinated,
    /// Synchronise-and-stop coordinated waves.
    SyncAndStop,
    /// Chandy–Lamport snapshot waves.
    ChandyLamport,
    /// Communication-induced checkpointing, one family member per
    /// [`CicVariant`].
    Cic(CicVariant),
}

impl ProtocolKind {
    /// All protocols, in the paper's presentation order; the CIC
    /// family expands into its four members.
    pub fn all() -> [ProtocolKind; 8] {
        [
            ProtocolKind::AppDriven,
            ProtocolKind::Uncoordinated,
            ProtocolKind::SyncAndStop,
            ProtocolKind::ChandyLamport,
            ProtocolKind::Cic(CicVariant::Index),
            ProtocolKind::Cic(CicVariant::Bcs),
            ProtocolKind::Cic(CicVariant::Hmnr),
            ProtocolKind::Cic(CicVariant::Lazy),
        ]
    }

    /// The non-CIC protocols, in presentation order — the base axis
    /// sweeps combine with a chosen set of CIC variants.
    pub fn base() -> [ProtocolKind; 4] {
        [
            ProtocolKind::AppDriven,
            ProtocolKind::Uncoordinated,
            ProtocolKind::SyncAndStop,
            ProtocolKind::ChandyLamport,
        ]
    }

    /// Display name matching the paper's figures ("appl-driven" etc.).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::AppDriven => "appl-driven",
            ProtocolKind::Uncoordinated => "uncoordinated",
            ProtocolKind::SyncAndStop => "SaS",
            ProtocolKind::ChandyLamport => "C-L",
            ProtocolKind::Cic(v) => v.name(),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`ProtocolKind`] (or [`CicVariant`]) name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError {
    input: String,
}

impl ParseProtocolError {
    /// The rejected input, verbatim.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl std::fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown protocol `{}` (expected one of: {}, \
             or a bare CIC variant index|bcs|hmnr|lazy)",
            self.input,
            ProtocolKind::all().map(ProtocolKind::name).join(", "),
        )
    }
}

impl std::error::Error for ParseProtocolError {}

impl std::str::FromStr for ProtocolKind {
    type Err = ParseProtocolError;

    /// Parses a protocol name. Accepts every [`ProtocolKind::name`]
    /// spelling case-insensitively ("appl-driven", "SaS", "C-L",
    /// "CIC-hmnr", …) plus the historical bare `--cic` variant
    /// spellings (`index`, `bcs`, `hmnr`, `lazy`), so
    /// `k.to_string().parse()` round-trips for every variant.
    fn from_str(s: &str) -> Result<ProtocolKind, ParseProtocolError> {
        let t = s.trim();
        if let Some(k) = ProtocolKind::all()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(t))
        {
            return Ok(k);
        }
        if let Some(v) = CicVariant::all()
            .into_iter()
            .find(|v| v.cli_name().eq_ignore_ascii_case(t))
        {
            return Ok(ProtocolKind::Cic(v));
        }
        Err(ParseProtocolError {
            input: s.to_string(),
        })
    }
}

impl std::fmt::Display for CicVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CicVariant {
    type Err = ParseProtocolError;

    /// Parses a CIC variant from either its display name ("CIC-bcs")
    /// or the bare `--cic` spelling ("bcs"), case-insensitively.
    fn from_str(s: &str) -> Result<CicVariant, ParseProtocolError> {
        match s.parse::<ProtocolKind>()? {
            ProtocolKind::Cic(v) => Ok(v),
            _ => Err(ParseProtocolError {
                input: s.to_string(),
            }),
        }
    }
}

/// Largest process count the comparison machinery accepts. The engine's
/// large-n core (calendar event queue, arena messages, O(Δ) clock
/// piggybacks) makes thousands of ranks practical; the remaining bound
/// is a sanity cap well past the paper's Figure 8 range, backed by the
/// memory guardrail below rather than a hard-coded small fleet.
pub const MAX_COMPARE_PROCS: usize = 4096;

/// Default per-run memory budget for the guardrail, MiB. Large enough
/// that the full supported range (n = [`MAX_COMPARE_PROCS`]) passes —
/// the cost estimate at 4096 ranks is ~512 MiB — while still refusing
/// configurations that a caller-supplied tighter budget rules out.
pub const DEFAULT_MEMORY_BUDGET_MIB: u64 = 2048;

/// Coarse upper estimate of one simulation run's resident memory at
/// `n` processes, MiB. Dominated by the per-process dense working
/// clocks (n² × 8 bytes, doubled for transient copies during rollback)
/// plus a per-process allowance for trace records; deliberately
/// pessimistic, because it gates runs *before* they allocate.
pub fn estimated_run_mib(n: usize) -> u64 {
    let bytes = 16 * (n as u64) * (n as u64) + 65_536 * n as u64;
    bytes.div_ceil(1 << 20)
}

/// A validation failure from [`CompareConfig::builder`] or
/// [`SweepPlan::builder`](crate::sweep::SweepPlan::builder) — typed, so
/// callers can match on *what* is wrong instead of parsing a panic
/// string, and nothing is silently clamped.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Process count was 0.
    ZeroProcs,
    /// Process count exceeds [`MAX_COMPARE_PROCS`].
    TooManyProcs {
        /// The requested process count.
        n: usize,
        /// The supported maximum.
        max: usize,
    },
    /// Checkpoint interval was 0 µs (timer/wave protocols would spin).
    ZeroInterval,
    /// A sweep was given no process counts.
    EmptyNs,
    /// A sweep was given zero seeds per cell.
    ZeroSeeds,
    /// A failure rate was negative or not finite.
    BadFailureRate(f64),
    /// A sweep was given no workloads.
    NoWorkloads,
    /// The estimated memory for a run at this process count exceeds
    /// the configured budget (see [`estimated_run_mib`]).
    MemoryGuardrail {
        /// The requested process count.
        n: usize,
        /// Estimated resident memory for one run, MiB.
        est_mib: u64,
        /// The configured budget, MiB.
        budget_mib: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroProcs => write!(f, "process count must be at least 1"),
            ConfigError::TooManyProcs { n, max } => {
                write!(f, "process count {n} exceeds the supported maximum {max}")
            }
            ConfigError::ZeroInterval => write!(f, "checkpoint interval must be at least 1 µs"),
            ConfigError::EmptyNs => write!(f, "sweep needs at least one process count"),
            ConfigError::ZeroSeeds => write!(f, "sweep needs at least one seed per cell"),
            ConfigError::BadFailureRate(r) => {
                write!(f, "failure rate must be finite and non-negative, got {r}")
            }
            ConfigError::NoWorkloads => write!(f, "sweep needs at least one workload"),
            ConfigError::MemoryGuardrail {
                n,
                est_mib,
                budget_mib,
            } => write!(
                f,
                "a run at {n} processes is estimated at {est_mib} MiB, \
                 over the {budget_mib} MiB memory budget"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of a comparison run. Construct via
/// [`CompareConfig::builder`].
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// The simulator configuration (network + cost model + seed).
    pub sim: SimConfig,
    /// Checkpoint interval `T` for timer/wave protocols, µs.
    pub interval_us: u64,
    /// Timer skew for uncoordinated/CIC, µs.
    pub skew_us: u64,
    /// Failure plan (empty = failure-free comparison).
    pub failures: FailurePlan,
}

impl CompareConfig {
    /// Starts building a comparison at `n` processes. Defaults: 60 ms
    /// interval, skew = interval/3, simulator seed `0xACFC`, no
    /// failures. Validation happens at
    /// [`build`](CompareConfigBuilder::build).
    pub fn builder(n: usize) -> CompareConfigBuilder {
        CompareConfigBuilder {
            n,
            interval_us: 60_000,
            skew_us: None,
            seed: None,
            failures: FailurePlan::none(),
            memory_budget_mib: DEFAULT_MEMORY_BUDGET_MIB,
        }
    }
}

/// Builder for [`CompareConfig`]: named setters over positional fields,
/// with validation ([`ConfigError`]) at [`build`](Self::build) instead
/// of silent clamping at use sites.
#[derive(Debug, Clone)]
pub struct CompareConfigBuilder {
    n: usize,
    interval_us: u64,
    skew_us: Option<u64>,
    seed: Option<u64>,
    failures: FailurePlan,
    memory_budget_mib: u64,
}

impl CompareConfigBuilder {
    /// Checkpoint interval `T` for timer/wave protocols, µs.
    pub fn interval_us(mut self, interval_us: u64) -> Self {
        self.interval_us = interval_us;
        self
    }

    /// Timer skew for uncoordinated/CIC, µs (default: interval/3).
    pub fn skew_us(mut self, skew_us: u64) -> Self {
        self.skew_us = Some(skew_us);
        self
    }

    /// Simulator RNG seed (jitter; default `0xACFC`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Failure plan to inject (default: none).
    pub fn failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// Memory budget for the guardrail, MiB (default
    /// [`DEFAULT_MEMORY_BUDGET_MIB`]). [`build`](Self::build) refuses
    /// process counts whose estimated footprint exceeds it.
    pub fn memory_budget_mib(mut self, budget_mib: u64) -> Self {
        self.memory_budget_mib = budget_mib;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<CompareConfig, ConfigError> {
        if self.n == 0 {
            return Err(ConfigError::ZeroProcs);
        }
        if self.n > MAX_COMPARE_PROCS {
            return Err(ConfigError::TooManyProcs {
                n: self.n,
                max: MAX_COMPARE_PROCS,
            });
        }
        let est_mib = estimated_run_mib(self.n);
        if est_mib > self.memory_budget_mib {
            return Err(ConfigError::MemoryGuardrail {
                n: self.n,
                est_mib,
                budget_mib: self.memory_budget_mib,
            });
        }
        if self.interval_us == 0 {
            return Err(ConfigError::ZeroInterval);
        }
        let mut sim = SimConfig::new(self.n);
        if let Some(seed) = self.seed {
            sim = sim.with_seed(seed);
        }
        Ok(CompareConfig {
            sim,
            interval_us: self.interval_us,
            skew_us: self.skew_us.unwrap_or(self.interval_us / 3),
            failures: self.failures,
        })
    }
}

/// Measured statistics for one protocol on one workload.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Which protocol.
    pub protocol: ProtocolKind,
    /// Whether the run completed.
    pub completed: bool,
    /// Makespan in seconds.
    pub makespan_secs: f64,
    /// Bare (no checkpointing, no failures) makespan in seconds.
    pub bare_secs: f64,
    /// Measured overhead ratio `makespan/bare − 1`.
    pub overhead_ratio: f64,
    /// Total checkpoints taken (all triggers).
    pub checkpoints: u64,
    /// Forced checkpoints (CIC).
    pub forced: u64,
    /// Protocol control messages.
    pub control_messages: u64,
    /// Protocol control bits.
    pub control_bits: u64,
    /// Protocol state piggybacked on application messages, bits (CIC;
    /// zero for every protocol that doesn't ride the app traffic).
    pub piggyback_bits: u64,
    /// Time stalled in checkpoint overhead + coordination, µs.
    pub ckpt_stall_us: u64,
    /// Coordination-only share of [`ckpt_stall_us`](RunStats::ckpt_stall_us)
    /// (wave round-trips, marker floods) — zero for the
    /// application-driven protocol, which is the paper's headline claim
    /// as a measured column.
    pub coord_stall_us: u64,
    /// Failures survived.
    pub failures: u64,
    /// Work lost to rollbacks, µs.
    pub lost_us: u64,
    /// Largest per-process rollback depth over all failures
    /// (checkpoints discarded).
    pub max_rollback_depth: u64,
    /// Message-latency histogram (µs) from the observed run.
    pub latency: HistSnapshot,
    /// Event-queue depth histogram sampled at every pop.
    pub queue_depth: HistSnapshot,
    /// Interval between consecutive checkpoint starts, µs.
    pub ckpt_interval: HistSnapshot,
}

impl RunStats {
    /// p50/p90/p99 upper bounds of message latency, µs.
    pub fn latency_percentiles(&self) -> Quantiles {
        self.latency.percentiles()
    }

    /// p50/p90/p99 upper bounds of event-queue depth.
    pub fn queue_depth_percentiles(&self) -> Quantiles {
        self.queue_depth.percentiles()
    }

    /// p50/p90/p99 upper bounds of the checkpoint interval, µs.
    pub fn ckpt_interval_percentiles(&self) -> Quantiles {
        self.ckpt_interval.percentiles()
    }

    /// The run's stats as a flat JSON object (stable keys; `n` is the
    /// process count of the run). Returned as a
    /// [`Json`](acfc_util::bench::Json) builder so callers pick the
    /// layout — `render()` for pretty artifacts, `render_line()` for
    /// JSONL streams — instead of re-parsing a pre-rendered string.
    pub fn json(&self, n: usize) -> acfc_util::bench::Json {
        let lat = self.latency_percentiles();
        let qd = self.queue_depth_percentiles();
        let ci = self.ckpt_interval_percentiles();
        acfc_util::bench::Json::new()
            .num("n", n as f64)
            .str("protocol", self.protocol.name())
            .num("completed", if self.completed { 1.0 } else { 0.0 })
            .num("makespan_secs", self.makespan_secs)
            .num("bare_secs", self.bare_secs)
            .num("overhead_ratio", self.overhead_ratio)
            .num("checkpoints", self.checkpoints as f64)
            .num("forced_checkpoints", self.forced as f64)
            .num("control_messages", self.control_messages as f64)
            .num("control_bits", self.control_bits as f64)
            .num("piggyback_bits", self.piggyback_bits as f64)
            .num("ckpt_stall_us", self.ckpt_stall_us as f64)
            .num("coord_stall_us", self.coord_stall_us as f64)
            .num("failures", self.failures as f64)
            .num("lost_us", self.lost_us as f64)
            .num("max_rollback_depth", self.max_rollback_depth as f64)
            .num("msg_latency_p50_us", lat.p50 as f64)
            .num("msg_latency_p90_us", lat.p90 as f64)
            .num("msg_latency_p99_us", lat.p99 as f64)
            .num("queue_depth_p50", qd.p50 as f64)
            .num("queue_depth_p90", qd.p90 as f64)
            .num("queue_depth_p99", qd.p99 as f64)
            .num("ckpt_interval_p50_us", ci.p50 as f64)
            .num("ckpt_interval_p90_us", ci.p90 as f64)
            .num("ckpt_interval_p99_us", ci.p99 as f64)
    }
}

/// Hooks that disable checkpointing entirely (the bare baseline).
#[derive(Debug, Clone, Copy, Default)]
struct NoCheckpointing;

impl Hooks for NoCheckpointing {
    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    fn uses_timers(&mut self) -> bool {
        false
    }
}

fn stats_from(
    protocol: ProtocolKind,
    trace: &Trace,
    obs: &SimObs,
    bare_secs: f64,
    piggyback_bits: u64,
) -> RunStats {
    let m = &trace.metrics;
    let makespan = trace.makespan_secs();
    let max_rollback_depth = trace
        .failures
        .iter()
        .flat_map(|f| {
            f.latest_seq
                .iter()
                .zip(&f.restored_seq)
                .map(|(&latest, restored)| latest - restored.unwrap_or(0))
        })
        .max()
        .unwrap_or(0);
    RunStats {
        protocol,
        completed: trace.completed(),
        makespan_secs: makespan,
        bare_secs,
        overhead_ratio: makespan / bare_secs - 1.0,
        checkpoints: m.app_checkpoints
            + m.timer_checkpoints
            + m.forced_checkpoints
            + m.coordinated_checkpoints,
        forced: m.forced_checkpoints,
        control_messages: m.control_messages,
        control_bits: m.control_bits,
        piggyback_bits,
        ckpt_stall_us: m.ckpt_stall_us,
        coord_stall_us: m.coord_stall_us,
        failures: m.failures,
        lost_us: trace.failures.iter().map(|f| f.lost_us).sum(),
        max_rollback_depth,
        latency: obs.msg_latency_us.snap(),
        queue_depth: obs.queue_depth.snap(),
        ckpt_interval: obs.ckpt_interval_us.snap(),
    }
}

/// Makespan in seconds of `program` with checkpointing disabled and no
/// failures — the `T_bare` denominator of every overhead ratio. Split
/// out so sweep cells that share a (workload, n, seed) baseline compute
/// it once and fan the value out to every protocol via
/// [`run_protocol_against`].
pub fn bare_makespan(program: &Program, sim: &SimConfig) -> f64 {
    let mut hooks = NoCheckpointing;
    run_with_hooks(&compile(program), sim, &mut hooks).makespan_secs()
}

/// Runs `protocol` on `program` under `config` and returns its stats.
///
/// The application-driven protocol runs the *transformed* program from
/// the offline analysis; every other protocol runs the original (their
/// own schedules replace the application's checkpoint statements). The
/// bare baseline disables checkpoints and failures.
///
/// # Panics
///
/// Panics if the application-driven analysis fails on the program.
pub fn run_protocol(program: &Program, protocol: ProtocolKind, config: &CompareConfig) -> RunStats {
    let bare_secs = bare_makespan(program, &config.sim);
    run_protocol_against(program, protocol, config, bare_secs)
}

/// Like [`run_protocol`] but against a caller-supplied bare makespan
/// (from [`bare_makespan`]), skipping the redundant baseline run.
///
/// # Panics
///
/// Panics if the application-driven analysis fails on the program.
pub fn run_protocol_against(
    program: &Program,
    protocol: ProtocolKind,
    config: &CompareConfig,
    bare_secs: f64,
) -> RunStats {
    let mut obs = SimObs::counters();
    let (trace, piggyback_bits) = run_protocol_observed(program, protocol, config, &mut obs);
    stats_from(protocol, &trace, &obs, bare_secs, piggyback_bits)
}

/// Runs `protocol` with a timeline-mode collector and returns both the
/// trace and the collector — the inputs one
/// [`acfc_sim::MergedRun`] track group of the merged Perfetto export
/// needs.
///
/// # Panics
///
/// Panics if the application-driven analysis fails on the program.
pub fn run_protocol_timeline(
    program: &Program,
    protocol: ProtocolKind,
    config: &CompareConfig,
) -> (Trace, SimObs) {
    let mut obs = SimObs::timeline();
    let (trace, _piggyback_bits) = run_protocol_observed(program, protocol, config, &mut obs);
    (trace, obs)
}

/// The shared protocol dispatch: one observed run under `protocol`.
/// Returns the trace plus the protocol's piggybacked bits (nonzero
/// only for the CIC family, which meters its own wire payload).
fn run_protocol_observed(
    program: &Program,
    protocol: ProtocolKind,
    config: &CompareConfig,
    obs: &mut SimObs,
) -> (Trace, u64) {
    let n = config.sim.nprocs;
    match protocol {
        ProtocolKind::AppDriven => {
            let ad = AppDriven::prepare(program, n.min(acfc_core::attr::MAX_ANALYSIS_RANKS))
                .unwrap_or_else(|e| panic!("analysis failed: {e}"));
            let mut hooks = ad.hooks();
            let trace = run_observed_with(
                &ad.compiled,
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                ad.picker(),
                obs,
            );
            (trace, 0)
        }
        ProtocolKind::Uncoordinated => {
            let mut hooks = uncoordinated_hooks(n, config.interval_us, config.skew_us);
            let trace = run_observed_with(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                uncoordinated_picker(),
                obs,
            );
            (trace, 0)
        }
        ProtocolKind::SyncAndStop => {
            let mut hooks = SyncAndStop::new(n, config.interval_us, config.sim.net.clone());
            // The simulator approximates the wave stop with a stall, so
            // in-flight messages can straddle a wave boundary on
            // asymmetric workloads; restoring the maximal consistent
            // line over the wave checkpoints (= latest-per-process when
            // the wave is tight) keeps recovery orphan-free.
            let trace = run_observed_with(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                max_consistent_picker(),
                obs,
            );
            (trace, 0)
        }
        ProtocolKind::ChandyLamport => {
            let mut hooks = ChandyLamport::new(n, config.interval_us, config.sim.net.clone());
            let trace = run_observed_with(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                max_consistent_picker(),
                obs,
            );
            (trace, 0)
        }
        ProtocolKind::Cic(variant) => {
            let mut hooks = CicProtocol::new(variant, n, config.interval_us, config.skew_us);
            let picker = hooks.picker();
            let trace = run_observed_with(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                picker,
                obs,
            );
            let bits = hooks.piggyback_bits();
            (trace, bits)
        }
    }
}

/// Runs every protocol on the workload; returns stats in
/// [`ProtocolKind::all`] order.
pub fn compare_all(program: &Program, config: &CompareConfig) -> Vec<RunStats> {
    ProtocolKind::all()
        .into_iter()
        .map(|k| run_protocol(program, k, config))
        .collect()
}

/// Renders stats as an aligned text table (one row per protocol):
/// makespans and overhead ratio, checkpoint/control counters, the
/// coordination-stall column, and message-latency percentile bounds.
pub fn render_table(stats: &[RunStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>8} {:>9} {:>6} {:>9} {:>17}\n",
        "protocol",
        "makespan",
        "bare",
        "ratio",
        "ckpts",
        "forced",
        "ctrl-msgs",
        "pb-bits",
        "coord-ms",
        "fails",
        "lost-ms",
        "lat-p50/p90/p99"
    ));
    for s in stats {
        let q = s.latency_percentiles();
        out.push_str(&format!(
            "{:<14} {:>8.3}s {:>8.3}s {:>9.4} {:>7} {:>7} {:>9} {:>8} {:>9.1} {:>6} {:>9.1} {:>17}\n",
            s.protocol.name(),
            s.makespan_secs,
            s.bare_secs,
            s.overhead_ratio,
            s.checkpoints,
            s.forced,
            s.control_messages,
            s.piggyback_bits,
            s.coord_stall_us as f64 / 1000.0,
            s.failures,
            s.lost_us as f64 / 1000.0,
            format!("{}/{}/{}µs", q.p50, q.p90, q.p99),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Program {
        acfc_mpsl::programs::jacobi(6)
    }

    #[test]
    fn all_protocols_complete_failure_free() {
        let cfg = CompareConfig::builder(4).build().unwrap();
        let stats = compare_all(&workload(), &cfg);
        assert_eq!(stats.len(), 8);
        for s in &stats {
            assert!(s.completed, "{} did not complete", s.protocol.name());
            assert!(
                s.overhead_ratio >= 0.0,
                "{}: {}",
                s.protocol.name(),
                s.overhead_ratio
            );
        }
        let table = render_table(&stats);
        assert!(table.contains("appl-driven"));
        assert!(table.contains("CIC-hmnr"));
        assert!(table.contains("coord-ms"));
        assert!(table.contains("pb-bits"));
        assert!(table.contains("lat-p50/p90/p99"));
        assert!(table.lines().count() >= 9);
        // Every run observed the same workload's messages, so the
        // latency histograms are populated and their percentile bounds
        // are ordered.
        for s in &stats {
            assert!(s.latency.count > 0, "{}", s.protocol.name());
            let q = s.latency_percentiles();
            assert!(q.p50 <= q.p90 && q.p90 <= q.p99);
            assert!(s.queue_depth.count > 0);
        }
    }

    #[test]
    fn coordination_stall_separates_coordinated_from_free() {
        let cfg = CompareConfig::builder(4).build().unwrap();
        let stats = compare_all(&workload(), &cfg);
        let by = |k: ProtocolKind| stats.iter().find(|s| s.protocol == k).unwrap();
        assert_eq!(by(ProtocolKind::AppDriven).coord_stall_us, 0);
        assert_eq!(by(ProtocolKind::Uncoordinated).coord_stall_us, 0);
        assert!(by(ProtocolKind::SyncAndStop).coord_stall_us > 0);
        assert!(by(ProtocolKind::ChandyLamport).coord_stall_us > 0);
        // The coordination share never exceeds the total stall.
        for s in &stats {
            assert!(s.coord_stall_us <= s.ckpt_stall_us, "{}", s.protocol.name());
        }
    }

    #[test]
    fn stats_json_carries_percentile_fields() {
        let cfg = CompareConfig::builder(2).build().unwrap();
        let s = run_protocol(&workload(), ProtocolKind::AppDriven, &cfg);
        let json = s.json(2).render();
        for key in [
            "\"protocol\": \"appl-driven\"",
            "\"forced_checkpoints\"",
            "\"control_messages\"",
            "\"coord_stall_us\"",
            "\"msg_latency_p50_us\"",
            "\"msg_latency_p99_us\"",
            "\"queue_depth_p90\"",
            "\"ckpt_interval_p99_us\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn app_driven_has_no_control_traffic_and_others_do() {
        let cfg = CompareConfig::builder(4).build().unwrap();
        let stats = compare_all(&workload(), &cfg);
        let by = |k: ProtocolKind| stats.iter().find(|s| s.protocol == k).unwrap();
        assert_eq!(by(ProtocolKind::AppDriven).control_messages, 0);
        assert_eq!(by(ProtocolKind::Uncoordinated).control_messages, 0);
        assert!(by(ProtocolKind::SyncAndStop).control_messages > 0);
        assert!(by(ProtocolKind::ChandyLamport).control_messages > 0);
        // C-L floods more markers than SaS exchanges control messages
        // (2n(n-1) vs 5(n-1)) once n > 3.
        assert!(
            by(ProtocolKind::ChandyLamport).control_messages
                > by(ProtocolKind::SyncAndStop).control_messages
        );
    }

    #[test]
    fn piggyback_bits_meter_only_the_cic_family() {
        let cfg = CompareConfig::builder(4).build().unwrap();
        let stats = compare_all(&workload(), &cfg);
        let by = |k: ProtocolKind| stats.iter().find(|s| s.protocol == k).unwrap();
        for base in ProtocolKind::base() {
            assert_eq!(by(base).piggyback_bits, 0, "{}", base.name());
        }
        let scalar = by(ProtocolKind::Cic(CicVariant::Index)).piggyback_bits;
        assert!(scalar > 0);
        assert_eq!(
            by(ProtocolKind::Cic(CicVariant::Bcs)).piggyback_bits,
            scalar
        );
        assert_eq!(
            by(ProtocolKind::Cic(CicVariant::Lazy)).piggyback_bits,
            scalar
        );
        // The vector-carrying member pays per-process state on the wire.
        assert!(by(ProtocolKind::Cic(CicVariant::Hmnr)).piggyback_bits > scalar);
        // All members ride the same app traffic: no control messages.
        for v in CicVariant::all() {
            assert_eq!(by(ProtocolKind::Cic(v)).control_messages, 0, "{}", v.name());
        }
    }

    #[test]
    fn comparison_with_failures_still_completes() {
        let mut cfg = CompareConfig::builder(2)
            .interval_us(40_000)
            .build()
            .unwrap();
        cfg.failures = FailurePlan::at(vec![(SimTime::from_millis(150), 0)]);
        for s in compare_all(&workload(), &cfg) {
            assert!(s.completed, "{} failed", s.protocol.name());
            assert_eq!(s.failures, 1, "{}", s.protocol.name());
            assert!(s.lost_us > 0, "{} lost no work?", s.protocol.name());
        }
    }

    #[test]
    fn app_driven_rollback_depth_is_bounded_by_one_wave() {
        // Aligned straight-cut recovery never discards more than the
        // skew between processes: at most 1 for lock-step Jacobi.
        let mut cfg = CompareConfig::builder(2)
            .interval_us(40_000)
            .build()
            .unwrap();
        cfg.failures = FailurePlan::at(vec![(SimTime::from_millis(200), 1)]);
        let s = run_protocol(&workload(), ProtocolKind::AppDriven, &cfg);
        assert!(s.completed);
        assert!(s.max_rollback_depth <= 1, "{}", s.max_rollback_depth);
    }

    #[test]
    fn builder_applies_defaults_and_setters() {
        let cfg = CompareConfig::builder(4).build().unwrap();
        assert_eq!(cfg.sim.nprocs, 4);
        assert_eq!(cfg.interval_us, 60_000);
        assert_eq!(cfg.skew_us, 20_000);
        assert_eq!(cfg.sim.seed, 0xACFC);
        let cfg = CompareConfig::builder(8)
            .interval_us(30_000)
            .skew_us(5_000)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(cfg.sim.nprocs, 8);
        assert_eq!(cfg.interval_us, 30_000);
        assert_eq!(cfg.skew_us, 5_000);
        assert_eq!(cfg.sim.seed, 7);
    }

    #[test]
    fn builder_rejects_invalid_parameters_with_typed_errors() {
        assert_eq!(
            CompareConfig::builder(0).build().unwrap_err(),
            ConfigError::ZeroProcs
        );
        assert_eq!(
            CompareConfig::builder(MAX_COMPARE_PROCS + 1)
                .build()
                .unwrap_err(),
            ConfigError::TooManyProcs {
                n: MAX_COMPARE_PROCS + 1,
                max: MAX_COMPARE_PROCS
            }
        );
        assert_eq!(
            CompareConfig::builder(2)
                .interval_us(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroInterval
        );
        // The boundary value itself is accepted, not clamped — the
        // default memory budget covers the full supported range.
        assert!(CompareConfig::builder(MAX_COMPARE_PROCS).build().is_ok());
        // Errors render as readable sentences for CLI surfaces.
        let msg = ConfigError::TooManyProcs { n: 4097, max: 4096 }.to_string();
        assert!(msg.contains("4097") && msg.contains("4096"), "{msg}");
    }

    /// A tight caller-supplied budget turns large n into a typed
    /// refusal before anything allocates, and the estimate is monotone
    /// so the refusal names a number the caller can reason about.
    #[test]
    fn memory_guardrail_refuses_over_budget_configs() {
        let err = CompareConfig::builder(1024)
            .memory_budget_mib(8)
            .build()
            .unwrap_err();
        match err {
            ConfigError::MemoryGuardrail {
                n,
                est_mib,
                budget_mib,
            } => {
                assert_eq!(n, 1024);
                assert_eq!(budget_mib, 8);
                assert!(est_mib > 8, "{est_mib}");
                assert_eq!(est_mib, estimated_run_mib(1024));
            }
            other => panic!("expected MemoryGuardrail, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("1024") && msg.contains("budget"), "{msg}");
        // Small fleets sail far under the default budget, and the
        // estimate grows with n.
        assert!(CompareConfig::builder(16).build().is_ok());
        assert!(estimated_run_mib(4096) <= DEFAULT_MEMORY_BUDGET_MIB);
        assert!(estimated_run_mib(256) < estimated_run_mib(2048));
    }

    #[test]
    fn protocol_kind_display_from_str_round_trips_exhaustively() {
        for k in ProtocolKind::all() {
            let rendered = k.to_string();
            assert_eq!(rendered, k.name());
            assert_eq!(rendered.parse::<ProtocolKind>(), Ok(k), "{rendered}");
            // Case-insensitive, whitespace-tolerant.
            assert_eq!(rendered.to_uppercase().parse::<ProtocolKind>(), Ok(k));
            assert_eq!(rendered.to_lowercase().parse::<ProtocolKind>(), Ok(k));
            assert_eq!(format!("  {rendered} ").parse::<ProtocolKind>(), Ok(k));
        }
        for v in CicVariant::all() {
            // Bare `--cic` spellings resolve to the CIC member, both as
            // a ProtocolKind and as a CicVariant.
            assert_eq!(
                v.cli_name().parse::<ProtocolKind>(),
                Ok(ProtocolKind::Cic(v))
            );
            assert_eq!(v.cli_name().parse::<CicVariant>(), Ok(v));
            assert_eq!(v.to_string().parse::<CicVariant>(), Ok(v));
        }
    }

    #[test]
    fn protocol_parse_errors_are_typed_and_list_the_alternatives() {
        let err = "zaphod".parse::<ProtocolKind>().unwrap_err();
        assert_eq!(err.input(), "zaphod");
        let msg = err.to_string();
        for k in ProtocolKind::all() {
            assert!(msg.contains(k.name()), "{msg} missing {}", k.name());
        }
        // A non-CIC protocol name is not a CicVariant.
        let err = "SaS".parse::<CicVariant>().unwrap_err();
        assert_eq!(err.input(), "SaS");
    }
}
