//! Head-to-head protocol comparison on the simulator.
//!
//! The paper compares protocols analytically (§4, Figures 8–9); this
//! module runs the same comparison *empirically*: each protocol
//! executes the same workload on the same simulated network and cost
//! model, with the same injected failures, and reports its measured
//! overhead ratio `r = Γ/T_bare − 1` against a bare run with
//! checkpointing disabled entirely.

use crate::app_driven::AppDriven;
use crate::chandy_lamport::ChandyLamport;
use crate::cic::IndexBasedCic;
use crate::sas::SyncAndStop;
use crate::uncoordinated::{uncoordinated_hooks, uncoordinated_picker};
use acfc_mpsl::Program;
use acfc_sim::{
    compile, run_with_failures, run_with_hooks, CutPicker, FailurePlan, Hooks, SimConfig, SimTime,
    Trace,
};

/// The protocols under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The paper's coordination-free protocol (offline analysis).
    AppDriven,
    /// Independent local timers, rollback-propagation recovery.
    Uncoordinated,
    /// Synchronise-and-stop coordinated waves.
    SyncAndStop,
    /// Chandy–Lamport snapshot waves.
    ChandyLamport,
    /// Index-based communication-induced checkpointing.
    IndexCic,
}

impl ProtocolKind {
    /// All protocols, in the paper's presentation order.
    pub fn all() -> [ProtocolKind; 5] {
        [
            ProtocolKind::AppDriven,
            ProtocolKind::Uncoordinated,
            ProtocolKind::SyncAndStop,
            ProtocolKind::ChandyLamport,
            ProtocolKind::IndexCic,
        ]
    }

    /// Display name matching the paper's figures ("appl-driven" etc.).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::AppDriven => "appl-driven",
            ProtocolKind::Uncoordinated => "uncoordinated",
            ProtocolKind::SyncAndStop => "SaS",
            ProtocolKind::ChandyLamport => "C-L",
            ProtocolKind::IndexCic => "CIC",
        }
    }
}

/// Parameters of a comparison run.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// The simulator configuration (network + cost model + seed).
    pub sim: SimConfig,
    /// Checkpoint interval `T` for timer/wave protocols, µs.
    pub interval_us: u64,
    /// Timer skew for uncoordinated/CIC, µs.
    pub skew_us: u64,
    /// Failure plan (empty = failure-free comparison).
    pub failures: FailurePlan,
}

impl CompareConfig {
    /// A comparison at `n` processes with interval `interval_us` and no
    /// failures.
    pub fn new(n: usize, interval_us: u64) -> CompareConfig {
        CompareConfig {
            sim: SimConfig::new(n),
            interval_us,
            skew_us: interval_us / 3,
            failures: FailurePlan::none(),
        }
    }
}

/// Measured statistics for one protocol on one workload.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Which protocol.
    pub protocol: ProtocolKind,
    /// Whether the run completed.
    pub completed: bool,
    /// Makespan in seconds.
    pub makespan_secs: f64,
    /// Bare (no checkpointing, no failures) makespan in seconds.
    pub bare_secs: f64,
    /// Measured overhead ratio `makespan/bare − 1`.
    pub overhead_ratio: f64,
    /// Total checkpoints taken (all triggers).
    pub checkpoints: u64,
    /// Forced checkpoints (CIC).
    pub forced: u64,
    /// Protocol control messages.
    pub control_messages: u64,
    /// Protocol control bits.
    pub control_bits: u64,
    /// Time stalled in checkpoint overhead + coordination, µs.
    pub ckpt_stall_us: u64,
    /// Failures survived.
    pub failures: u64,
    /// Work lost to rollbacks, µs.
    pub lost_us: u64,
    /// Largest per-process rollback depth over all failures
    /// (checkpoints discarded).
    pub max_rollback_depth: u64,
}

/// Hooks that disable checkpointing entirely (the bare baseline).
#[derive(Debug, Clone, Copy, Default)]
struct NoCheckpointing;

impl Hooks for NoCheckpointing {
    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    fn uses_timers(&mut self) -> bool {
        false
    }
}

fn stats_from(protocol: ProtocolKind, trace: &Trace, bare_secs: f64) -> RunStats {
    let m = &trace.metrics;
    let makespan = trace.makespan_secs();
    let max_rollback_depth = trace
        .failures
        .iter()
        .flat_map(|f| {
            f.latest_seq
                .iter()
                .zip(&f.restored_seq)
                .map(|(&latest, restored)| latest - restored.unwrap_or(0))
        })
        .max()
        .unwrap_or(0);
    RunStats {
        protocol,
        completed: trace.completed(),
        makespan_secs: makespan,
        bare_secs,
        overhead_ratio: makespan / bare_secs - 1.0,
        checkpoints: m.app_checkpoints
            + m.timer_checkpoints
            + m.forced_checkpoints
            + m.coordinated_checkpoints,
        forced: m.forced_checkpoints,
        control_messages: m.control_messages,
        control_bits: m.control_bits,
        ckpt_stall_us: m.ckpt_stall_us,
        failures: m.failures,
        lost_us: trace.failures.iter().map(|f| f.lost_us).sum(),
        max_rollback_depth,
    }
}

/// Runs `protocol` on `program` under `config` and returns its stats.
///
/// The application-driven protocol runs the *transformed* program from
/// the offline analysis; every other protocol runs the original (their
/// own schedules replace the application's checkpoint statements). The
/// bare baseline disables checkpoints and failures.
///
/// # Panics
///
/// Panics if the application-driven analysis fails on the program.
pub fn run_protocol(program: &Program, protocol: ProtocolKind, config: &CompareConfig) -> RunStats {
    let n = config.sim.nprocs;
    let bare = {
        let mut hooks = NoCheckpointing;
        run_with_hooks(&compile(program), &config.sim, &mut hooks)
    };
    let bare_secs = bare.makespan_secs();
    let trace = match protocol {
        ProtocolKind::AppDriven => {
            let ad = AppDriven::prepare(program, n.min(acfc_core::attr::MAX_ANALYSIS_RANKS))
                .unwrap_or_else(|e| panic!("analysis failed: {e}"));
            let mut hooks = ad.hooks();
            run_with_failures(
                &ad.compiled,
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                ad.picker(),
            )
        }
        ProtocolKind::Uncoordinated => {
            let mut hooks = uncoordinated_hooks(n, config.interval_us, config.skew_us);
            run_with_failures(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                uncoordinated_picker(),
            )
        }
        ProtocolKind::SyncAndStop => {
            let mut hooks = SyncAndStop::new(n, config.interval_us, config.sim.net.clone());
            run_with_failures(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                CutPicker::LatestPerProcess,
            )
        }
        ProtocolKind::ChandyLamport => {
            let mut hooks = ChandyLamport::new(n, config.interval_us, config.sim.net.clone());
            run_with_failures(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                CutPicker::LatestPerProcess,
            )
        }
        ProtocolKind::IndexCic => {
            let mut hooks = IndexBasedCic::new(n, config.interval_us, config.skew_us);
            run_with_failures(
                &compile(program),
                &config.sim,
                &mut hooks,
                config.failures.clone(),
                CutPicker::AlignedSeq,
            )
        }
    };
    stats_from(protocol, &trace, bare_secs)
}

/// Runs every protocol on the workload; returns stats in
/// [`ProtocolKind::all`] order.
pub fn compare_all(program: &Program, config: &CompareConfig) -> Vec<RunStats> {
    ProtocolKind::all()
        .into_iter()
        .map(|k| run_protocol(program, k, config))
        .collect()
}

/// Renders stats as an aligned text table (one row per protocol).
pub fn render_table(stats: &[RunStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>6} {:>9}\n",
        "protocol", "makespan", "bare", "ratio", "ckpts", "forced", "ctrl-msgs", "fails", "lost-ms"
    ));
    for s in stats {
        out.push_str(&format!(
            "{:<14} {:>8.3}s {:>8.3}s {:>9.4} {:>7} {:>7} {:>9} {:>6} {:>9.1}\n",
            s.protocol.name(),
            s.makespan_secs,
            s.bare_secs,
            s.overhead_ratio,
            s.checkpoints,
            s.forced,
            s.control_messages,
            s.failures,
            s.lost_us as f64 / 1000.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Program {
        acfc_mpsl::programs::jacobi(6)
    }

    #[test]
    fn all_protocols_complete_failure_free() {
        let cfg = CompareConfig::new(4, 60_000);
        let stats = compare_all(&workload(), &cfg);
        assert_eq!(stats.len(), 5);
        for s in &stats {
            assert!(s.completed, "{} did not complete", s.protocol.name());
            assert!(
                s.overhead_ratio >= 0.0,
                "{}: {}",
                s.protocol.name(),
                s.overhead_ratio
            );
        }
        let table = render_table(&stats);
        assert!(table.contains("appl-driven"));
        assert!(table.lines().count() >= 6);
    }

    #[test]
    fn app_driven_has_no_control_traffic_and_others_do() {
        let cfg = CompareConfig::new(4, 60_000);
        let stats = compare_all(&workload(), &cfg);
        let by = |k: ProtocolKind| stats.iter().find(|s| s.protocol == k).unwrap();
        assert_eq!(by(ProtocolKind::AppDriven).control_messages, 0);
        assert_eq!(by(ProtocolKind::Uncoordinated).control_messages, 0);
        assert!(by(ProtocolKind::SyncAndStop).control_messages > 0);
        assert!(by(ProtocolKind::ChandyLamport).control_messages > 0);
        // C-L floods more markers than SaS exchanges control messages
        // (2n(n-1) vs 5(n-1)) once n > 3.
        assert!(
            by(ProtocolKind::ChandyLamport).control_messages
                > by(ProtocolKind::SyncAndStop).control_messages
        );
    }

    #[test]
    fn comparison_with_failures_still_completes() {
        let mut cfg = CompareConfig::new(2, 40_000);
        cfg.failures = FailurePlan::at(vec![(SimTime::from_millis(150), 0)]);
        for s in compare_all(&workload(), &cfg) {
            assert!(s.completed, "{} failed", s.protocol.name());
            assert_eq!(s.failures, 1, "{}", s.protocol.name());
            assert!(s.lost_us > 0, "{} lost no work?", s.protocol.name());
        }
    }

    #[test]
    fn app_driven_rollback_depth_is_bounded_by_one_wave() {
        // Aligned straight-cut recovery never discards more than the
        // skew between processes: at most 1 for lock-step Jacobi.
        let mut cfg = CompareConfig::new(2, 40_000);
        cfg.failures = FailurePlan::at(vec![(SimTime::from_millis(200), 1)]);
        let s = run_protocol(&workload(), ProtocolKind::AppDriven, &cfg);
        assert!(s.completed);
        assert!(s.max_rollback_depth <= 1, "{}", s.max_rollback_depth);
    }
}
