//! Communication-induced checkpointing (CIC), index-based.
//!
//! The third family in the paper's taxonomy (§1): processes checkpoint
//! on local timers, but every application message piggybacks the
//! sender's checkpoint index; a receiver whose index lags behind the
//! piggybacked one is **forced** to checkpoint before consuming the
//! message (the classic Briatico–Ciuffoletti–Simoncini index-based
//! protocol). This keeps same-index cuts consistent without
//! coordination messages — at the price of unplanned forced
//! checkpoints, whose count grows with communication density.

use acfc_sim::{Hooks, RecvAction, SimTime, TimerCheckpoints};

/// Index-based CIC hooks: timer-driven basic checkpoints plus forced
/// checkpoints on lagging receives.
#[derive(Debug, Clone)]
pub struct IndexBasedCic {
    timers: TimerCheckpoints,
}

impl IndexBasedCic {
    /// Basic (timer) checkpoints every `interval_us`, with process `p`
    /// phase-shifted by `p · skew_us` (skew is what makes forced
    /// checkpoints happen at all; perfectly aligned timers never lag).
    pub fn new(nprocs: usize, interval_us: u64, skew_us: u64) -> IndexBasedCic {
        IndexBasedCic {
            timers: TimerCheckpoints::new(nprocs, interval_us, skew_us),
        }
    }
}

impl Hooks for IndexBasedCic {
    fn piggyback(&mut self, _p: usize, ckpt_seq: u64, _now: SimTime) -> u64 {
        ckpt_seq
    }

    fn on_recv(&mut self, _p: usize, piggyback: u64, own_seq: u64, _now: SimTime) -> RecvAction {
        if piggyback > own_seq {
            acfc_obs::count("protocols/cic/forced_checkpoints", 1);
            RecvAction::ForceCheckpointFirst
        } else {
            RecvAction::Deliver
        }
    }

    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    fn timer_checkpoint_due(&mut self, p: usize, now: SimTime) -> bool {
        self.timers.timer_checkpoint_due(p, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::{max_consistent_line_of, IntervalIndex};
    use acfc_sim::{compile, run_with_hooks, SimConfig};

    #[test]
    fn skewed_timers_force_checkpoints() {
        let p = acfc_mpsl::programs::ring(8, 2048);
        let cfg = SimConfig::new(4);
        let mut hooks = IndexBasedCic::new(4, 25_000, 9_000);
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        assert!(t.metrics.timer_checkpoints > 0);
        assert!(
            t.metrics.forced_checkpoints > 0,
            "skewed CIC must force checkpoints"
        );
        assert_eq!(t.metrics.app_checkpoints, 0);
        assert_eq!(
            t.metrics.control_messages, 0,
            "CIC piggybacks, no extra messages"
        );
    }

    #[test]
    fn forced_checkpoints_precede_the_triggering_recv() {
        let p = acfc_mpsl::programs::pingpong(6);
        let cfg = SimConfig::new(2);
        let mut hooks = IndexBasedCic::new(2, 15_000, 8_000);
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        // Index invariant (the BCS property): no received message may
        // carry an index greater than the receiver's at receive time.
        let idx = IntervalIndex::from_trace(&t);
        for m in t.live_messages() {
            if let Some(rs) = m.recv_step {
                let recv_index = idx.interval_of(m.to, rs);
                assert!(
                    recv_index >= m.piggyback,
                    "receive at index {recv_index} consumed index-{} message",
                    m.piggyback
                );
            }
        }
    }

    #[test]
    fn same_index_cuts_are_consistent() {
        // The protocol's guarantee: the aligned cut at the minimum
        // common index is a recovery line.
        let p = acfc_mpsl::programs::stencil_1d(8);
        let cfg = SimConfig::new(4);
        let mut hooks = IndexBasedCic::new(4, 20_000, 6_000);
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        let depth = t.aligned_depth() as u64;
        assert!(depth > 0, "workload must checkpoint");
        // Every aligned cut is consistent under the catch-up rule...
        for i in 1..=depth {
            assert!(
                acfc_sim::consistency::cut_consistency(&t, &vec![i; t.nprocs]),
                "aligned cut {i} inconsistent under CIC"
            );
        }
        // ...and therefore the maximal consistent line dominates the
        // deepest aligned cut (consistent cuts are closed under join).
        let line = max_consistent_line_of(&t);
        for p in 0..t.nprocs {
            assert!(line[p] >= depth, "line {line:?} vs aligned depth {depth}");
        }
    }

    #[test]
    fn dense_communication_forces_more() {
        let cfg = SimConfig::new(4);
        let sparse = {
            let p = acfc_mpsl::programs::ring(4, 64);
            let mut hooks = IndexBasedCic::new(4, 25_000, 9_000);
            run_with_hooks(&compile(&p), &cfg, &mut hooks)
        };
        let dense = {
            let p = acfc_mpsl::programs::jacobi(12);
            let mut hooks = IndexBasedCic::new(4, 25_000, 9_000);
            run_with_hooks(&compile(&p), &cfg, &mut hooks)
        };
        assert!(sparse.completed() && dense.completed());
        assert!(
            dense.metrics.forced_checkpoints >= sparse.metrics.forced_checkpoints,
            "denser communication should not force fewer checkpoints"
        );
    }
}
