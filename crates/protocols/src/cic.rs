//! Communication-induced checkpointing (CIC): the index-based family.
//!
//! The third family in the paper's taxonomy (§1): processes checkpoint
//! on local timers, but every application message piggybacks logical
//! clock state; a receiver whose clock lags the piggybacked one in a
//! dangerous way is **forced** to checkpoint before consuming the
//! message. No control messages are ever sent — the price is unplanned
//! forced checkpoints, whose count grows with communication density
//! and differs sharply across the family (the axis catalogued in "A
//! Rollback in the History of Communication-Induced Checkpointing").
//!
//! Four members live behind the [`CicIndexing`] trait:
//!
//! | variant | piggyback | forces when | clock advance |
//! |---------|-----------|-------------|---------------|
//! | [`CicVariant::Index`] | engine ckpt seq (64 bit) | `m.seq > own_seq`, once per lag unit | every checkpoint |
//! | [`CicVariant::Bcs`]   | protocol index (64 bit)  | `m.idx > idx`, one jump | timer `+1`; forced jumps to `m.idx` |
//! | [`CicVariant::Hmnr`]  | clock + greater bits + ckpt vector (`64 + n + 64n` bit) | `m.clock > clock ∧ sent-in-interval` | timer `+1`; forced absorbs `m.clock` |
//! | [`CicVariant::Lazy`]  | protocol index (64 bit)  | `m.idx > idx`, one jump | first send after a checkpoint `+1` |
//!
//! Every member keeps the no-Z-cycle property — each variant's
//! timestamps are constant between the first send of an interval and
//! the interval's end, non-decreasing along zigzag steps, and strictly
//! increasing across the checkpoints that matter — so all checkpoints
//! are useful. `depgraph::useless_checkpoints` pins that over
//! randomized workloads and failure storms.

use acfc_sim::{CkptTrigger, CutPicker, Hooks, RecvAction, SimTime, TimerCheckpoints};

/// Which member of the CIC family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CicVariant {
    /// The engine-sequence protocol this repo started with: piggyback
    /// the dynamic checkpoint count verbatim and force once per unit
    /// of lag, so recovery can use aligned-sequence cuts.
    Index,
    /// Briatico–Ciuffoletti–Simoncini: scalar index, one forced
    /// checkpoint per lagging receive (the index jumps to `m.idx`).
    Bcs,
    /// Hélary–Mostefaoui–Netzer–Raynal, vector-carrying: scalar clock
    /// plus a per-process checkpoint-clock vector and a boolean
    /// "greater" array on the wire; forces only when the receiver has
    /// sent in its current interval.
    Hmnr,
    /// Lazy index advancement: the index bumps at the first send after
    /// a checkpoint instead of at every checkpoint, so quiet intervals
    /// never inflate the global index.
    Lazy,
}

impl CicVariant {
    /// Every member, in presentation order.
    pub fn all() -> [CicVariant; 4] {
        [
            CicVariant::Index,
            CicVariant::Bcs,
            CicVariant::Hmnr,
            CicVariant::Lazy,
        ]
    }

    /// Short display name (also the `--cic` CLI spelling, minus the
    /// family prefix for the founding member).
    pub fn name(self) -> &'static str {
        match self {
            CicVariant::Index => "CIC",
            CicVariant::Bcs => "CIC-bcs",
            CicVariant::Hmnr => "CIC-hmnr",
            CicVariant::Lazy => "CIC-lazy",
        }
    }

    /// The bare `--cic` CLI spelling (`index`, `bcs`, `hmnr`, `lazy`)
    /// — the family prefix dropped, the founding member spelled out.
    pub fn cli_name(self) -> &'static str {
        match self {
            CicVariant::Index => "index",
            CicVariant::Bcs => "bcs",
            CicVariant::Hmnr => "hmnr",
            CicVariant::Lazy => "lazy",
        }
    }

    /// Parse a CLI spelling (`index`, `bcs`, `hmnr`, `lazy`).
    #[deprecated(
        since = "0.1.0",
        note = "use the `FromStr` impl (`s.parse::<CicVariant>()`), which also \
                accepts display names and reports a typed ParseProtocolError"
    )]
    pub fn parse(s: &str) -> Option<CicVariant> {
        s.parse().ok()
    }

    /// The obs counter bumped on every forced checkpoint.
    pub fn forced_counter(self) -> &'static str {
        match self {
            CicVariant::Index => "protocols/cic/index/forced_checkpoints",
            CicVariant::Bcs => "protocols/cic/bcs/forced_checkpoints",
            CicVariant::Hmnr => "protocols/cic/hmnr/forced_checkpoints",
            CicVariant::Lazy => "protocols/cic/lazy/forced_checkpoints",
        }
    }

    /// Recovery-line picker matching the variant's guarantee. Only the
    /// founding member aligns its forced checkpoints with the engine
    /// sequence number (it forces once per lag *unit*), so only it may
    /// restore aligned-sequence cuts; the others jump their clocks and
    /// recover through the maximal consistent line.
    pub fn picker(self) -> CutPicker {
        match self {
            CicVariant::Index => CutPicker::AlignedSeq,
            _ => crate::depgraph::max_consistent_picker(),
        }
    }
}

/// The decide-on-receive discipline of one CIC family member: given
/// the piggybacked index/vector state, must this receive force a
/// checkpoint?
///
/// [`CicProtocol`] adapts an implementation to the engine's
/// [`Hooks`]: `stamp` runs at every send, `force_on_recv` is
/// re-consulted until it stops demanding checkpoints (so absorption of
/// the piggybacked knowledge belongs on its `false` path — that is the
/// call that precedes delivery), and `checkpoint_taken` observes every
/// checkpoint the engine records, which is where clocks advance.
pub trait CicIndexing {
    /// Which member this is.
    fn variant(&self) -> CicVariant;

    /// Stamp for an outgoing message from `p` to `to`; `ckpt_seq` is
    /// the engine's dynamic checkpoint count for `p`. Vector-carrying
    /// members return a token into an internal payload store (the
    /// engine transports one `u64` per message; redelivered messages
    /// replay their original token, which is exactly the replay-the-
    /// original-payload semantics rollback needs).
    fn stamp(&mut self, p: usize, to: usize, ckpt_seq: u64) -> u64;

    /// Must `p` force a checkpoint before consuming a message carrying
    /// `piggyback`? Returning `false` means the message is delivered
    /// now, so implementations absorb piggybacked knowledge on that
    /// path.
    fn force_on_recv(&mut self, p: usize, piggyback: u64, own_seq: u64) -> bool;

    /// A checkpoint of `p` was recorded with `trigger`.
    fn checkpoint_taken(&mut self, p: usize, trigger: CkptTrigger);

    /// Width of the piggybacked payload on `p`'s next message, bits.
    fn stamp_bits(&self, p: usize) -> u64;
}

/// The founding member: piggyback the engine checkpoint sequence and
/// force once per unit of lag, catching the receiver all the way up —
/// which is what keeps same-sequence cuts consistent.
#[derive(Debug, Clone, Default)]
pub struct IndexIndexing;

impl CicIndexing for IndexIndexing {
    fn variant(&self) -> CicVariant {
        CicVariant::Index
    }

    fn stamp(&mut self, _p: usize, _to: usize, ckpt_seq: u64) -> u64 {
        ckpt_seq
    }

    fn force_on_recv(&mut self, _p: usize, piggyback: u64, own_seq: u64) -> bool {
        piggyback > own_seq
    }

    fn checkpoint_taken(&mut self, _p: usize, _trigger: CkptTrigger) {}

    fn stamp_bits(&self, _p: usize) -> u64 {
        64
    }
}

/// Briatico–Ciuffoletti–Simoncini: a protocol-owned scalar index per
/// process. Timer checkpoints bump it; a lagging receive forces one
/// checkpoint and jumps the index to the piggybacked value, so deep
/// lag costs a single forced checkpoint instead of one per unit.
#[derive(Debug, Clone)]
pub struct BcsIndexing {
    idx: Vec<u64>,
    pending: Vec<u64>,
}

impl BcsIndexing {
    /// Fresh state for `nprocs` processes, all indexes at zero.
    pub fn new(nprocs: usize) -> BcsIndexing {
        BcsIndexing {
            idx: vec![0; nprocs],
            pending: vec![0; nprocs],
        }
    }
}

impl CicIndexing for BcsIndexing {
    fn variant(&self) -> CicVariant {
        CicVariant::Bcs
    }

    fn stamp(&mut self, p: usize, _to: usize, _ckpt_seq: u64) -> u64 {
        self.idx[p]
    }

    fn force_on_recv(&mut self, p: usize, piggyback: u64, _own_seq: u64) -> bool {
        if piggyback > self.idx[p] {
            self.pending[p] = piggyback;
            true
        } else {
            false
        }
    }

    fn checkpoint_taken(&mut self, p: usize, trigger: CkptTrigger) {
        // Every checkpoint strictly increases the index (the no-Z-cycle
        // invariant): timers by one, forced ones by jumping to the
        // piggybacked value that demanded them.
        self.idx[p] = match trigger {
            CkptTrigger::Forced => self.pending[p].max(self.idx[p] + 1),
            _ => self.idx[p] + 1,
        };
    }

    fn stamp_bits(&self, _p: usize) -> u64 {
        64
    }
}

/// Lazy index advancement: like BCS, but the index bumps at the first
/// send after a checkpoint rather than at the checkpoint itself. A
/// process that checkpoints without communicating never inflates the
/// global index, so receivers lag less and force less. The no-Z-cycle
/// argument survives because any message sent after a checkpoint still
/// carries a strictly larger index than every message received before
/// it, and the index stays constant from an interval's first send to
/// its end.
#[derive(Debug, Clone)]
pub struct LazyIndexing {
    idx: Vec<u64>,
    bumped: Vec<bool>,
    pending: Vec<u64>,
}

impl LazyIndexing {
    /// Fresh state for `nprocs` processes, all indexes at zero.
    pub fn new(nprocs: usize) -> LazyIndexing {
        LazyIndexing {
            idx: vec![0; nprocs],
            bumped: vec![false; nprocs],
            pending: vec![0; nprocs],
        }
    }
}

impl CicIndexing for LazyIndexing {
    fn variant(&self) -> CicVariant {
        CicVariant::Lazy
    }

    fn stamp(&mut self, p: usize, _to: usize, _ckpt_seq: u64) -> u64 {
        if !self.bumped[p] {
            self.idx[p] += 1;
            self.bumped[p] = true;
        }
        self.idx[p]
    }

    fn force_on_recv(&mut self, p: usize, piggyback: u64, _own_seq: u64) -> bool {
        if piggyback > self.idx[p] {
            self.pending[p] = piggyback;
            true
        } else {
            false
        }
    }

    fn checkpoint_taken(&mut self, p: usize, trigger: CkptTrigger) {
        if trigger == CkptTrigger::Forced {
            self.idx[p] = self.pending[p].max(self.idx[p]);
        }
        self.bumped[p] = false;
    }

    fn stamp_bits(&self, _p: usize) -> u64 {
        64
    }
}

/// One HMNR wire payload, captured at send time. The engine transports
/// a token; redelivered messages replay the original payload.
#[derive(Debug, Clone)]
struct HmnrStamp {
    clock: u64,
    /// Bitset over processes: bit `k` set iff the sender's clock was
    /// strictly greater than its knowledge of `k`'s last checkpoint
    /// clock.
    greater: Box<[u64]>,
    /// The sender's knowledge of each process's last checkpoint clock.
    kclock: Box<[u64]>,
}

/// Hélary–Mostefaoui–Netzer–Raynal, vector-carrying: each process
/// keeps a scalar clock plus a vector of the highest checkpoint clock
/// it knows per process, and piggybacks all of it (clock, the boolean
/// "greater" array, the vector). A receive forces a checkpoint only
/// when the receiver has **sent in its current interval** and the
/// message's clock is ahead — the sent-conjunct is what lets HMNR
/// force strictly less than BCS on the same traffic. Clock absorption
/// while the interval has pending sends would break the
/// constant-after-first-send invariant the no-Z-cycle proof needs, so
/// a send freezes the clock until the next checkpoint; the vector
/// knowledge still merges on every delivery.
#[derive(Debug, Clone)]
pub struct HmnrIndexing {
    nprocs: usize,
    clock: Vec<u64>,
    /// `kclock[p][k]`: highest checkpoint clock of `k` known to `p`.
    kclock: Vec<Box<[u64]>>,
    sent: Vec<bool>,
    pending: Vec<u64>,
    store: Vec<HmnrStamp>,
}

impl HmnrIndexing {
    /// Fresh state for `nprocs` processes: zero clocks, empty
    /// knowledge, nothing sent.
    pub fn new(nprocs: usize) -> HmnrIndexing {
        HmnrIndexing {
            nprocs,
            clock: vec![0; nprocs],
            kclock: vec![vec![0; nprocs].into_boxed_slice(); nprocs],
            sent: vec![false; nprocs],
            pending: vec![0; nprocs],
            store: Vec::new(),
        }
    }

    fn absorb(&mut self, p: usize, token: u64) {
        let s = &self.store[token as usize];
        for k in 0..self.nprocs {
            let known = &mut self.kclock[p][k];
            if s.kclock[k] > *known {
                *known = s.kclock[k];
            }
            // `greater[k]` clear means the sender knew `k` had
            // checkpointed at `s.clock` or later.
            if s.greater[k >> 6] & (1 << (k & 63)) == 0 && s.clock > *known {
                *known = s.clock;
            }
        }
        if s.clock > self.clock[p] && !self.sent[p] {
            self.clock[p] = s.clock;
        }
    }
}

impl CicIndexing for HmnrIndexing {
    fn variant(&self) -> CicVariant {
        CicVariant::Hmnr
    }

    fn stamp(&mut self, p: usize, _to: usize, _ckpt_seq: u64) -> u64 {
        self.sent[p] = true;
        let clock = self.clock[p];
        let mut greater = vec![0u64; self.nprocs.div_ceil(64)].into_boxed_slice();
        for k in 0..self.nprocs {
            if clock > self.kclock[p][k] {
                greater[k >> 6] |= 1 << (k & 63);
            }
        }
        self.store.push(HmnrStamp {
            clock,
            greater,
            kclock: self.kclock[p].clone(),
        });
        (self.store.len() - 1) as u64
    }

    fn force_on_recv(&mut self, p: usize, piggyback: u64, _own_seq: u64) -> bool {
        let s = &self.store[piggyback as usize];
        if s.clock > self.clock[p] && self.sent[p] {
            self.pending[p] = piggyback;
            true
        } else {
            self.absorb(p, piggyback);
            false
        }
    }

    fn checkpoint_taken(&mut self, p: usize, trigger: CkptTrigger) {
        self.clock[p] = match trigger {
            CkptTrigger::Forced => {
                let demanded = self.store[self.pending[p] as usize].clock;
                demanded.max(self.clock[p] + 1)
            }
            _ => self.clock[p] + 1,
        };
        self.kclock[p][p] = self.clock[p];
        self.sent[p] = false;
    }

    fn stamp_bits(&self, _p: usize) -> u64 {
        // clock + one greater bit per process + the checkpoint-clock
        // vector.
        64 + self.nprocs as u64 + 64 * self.nprocs as u64
    }
}

/// A CIC family member wired to the engine: timer-driven basic
/// checkpoints plus the member's decide-on-receive discipline, with
/// piggyback traffic metered.
pub struct CicProtocol {
    timers: TimerCheckpoints,
    indexing: Box<dyn CicIndexing + Send>,
    piggyback_bits: u64,
}

impl CicProtocol {
    /// Basic (timer) checkpoints every `interval_us`, with process `p`
    /// phase-shifted by `p · skew_us` (skew is what makes forced
    /// checkpoints happen at all; perfectly aligned timers never lag).
    /// `nprocs` sizes both the timer bank and the member's per-process
    /// clock state.
    pub fn new(variant: CicVariant, nprocs: usize, interval_us: u64, skew_us: u64) -> CicProtocol {
        let indexing: Box<dyn CicIndexing + Send> = match variant {
            CicVariant::Index => Box::new(IndexIndexing),
            CicVariant::Bcs => Box::new(BcsIndexing::new(nprocs)),
            CicVariant::Hmnr => Box::new(HmnrIndexing::new(nprocs)),
            CicVariant::Lazy => Box::new(LazyIndexing::new(nprocs)),
        };
        CicProtocol {
            timers: TimerCheckpoints::new(nprocs, interval_us, skew_us),
            indexing,
            piggyback_bits: 0,
        }
    }

    /// Which member this is.
    pub fn variant(&self) -> CicVariant {
        self.indexing.variant()
    }

    /// Total piggybacked protocol payload over the run so far, bits.
    pub fn piggyback_bits(&self) -> u64 {
        self.piggyback_bits
    }

    /// Recovery-line picker matching this member's guarantee.
    pub fn picker(&self) -> CutPicker {
        self.variant().picker()
    }
}

impl std::fmt::Debug for CicProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CicProtocol")
            .field("variant", &self.variant())
            .field("piggyback_bits", &self.piggyback_bits)
            .finish()
    }
}

impl Hooks for CicProtocol {
    fn piggyback(&mut self, p: usize, to: usize, ckpt_seq: u64, _now: SimTime) -> u64 {
        self.piggyback_bits += self.indexing.stamp_bits(p);
        self.indexing.stamp(p, to, ckpt_seq)
    }

    fn on_recv(&mut self, p: usize, piggyback: u64, own_seq: u64, _now: SimTime) -> RecvAction {
        if self.indexing.force_on_recv(p, piggyback, own_seq) {
            acfc_obs::count("protocols/cic/forced_checkpoints", 1);
            acfc_obs::count(self.indexing.variant().forced_counter(), 1);
            RecvAction::ForceCheckpointFirst
        } else {
            RecvAction::Deliver
        }
    }

    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    fn timer_checkpoint_due(&mut self, p: usize, now: SimTime) -> bool {
        self.timers.timer_checkpoint_due(p, now)
    }

    fn checkpoint_taken(&mut self, p: usize, trigger: CkptTrigger, _now: SimTime) {
        self.indexing.checkpoint_taken(p, trigger);
    }
}

/// The pre-family name for the founding member, kept as a constructor
/// shim: `IndexBasedCic::new` builds a [`CicProtocol`] running
/// [`CicVariant::Index`].
pub struct IndexBasedCic;

impl IndexBasedCic {
    /// See [`CicProtocol::new`]; the variant is [`CicVariant::Index`].
    // Deliberately a constructor shim: the struct is an empty namespace
    // and the built value is the family protocol.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(nprocs: usize, interval_us: u64, skew_us: u64) -> CicProtocol {
        CicProtocol::new(CicVariant::Index, nprocs, interval_us, skew_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::{max_consistent_line_of, useless_checkpoints, IntervalIndex};
    use acfc_sim::{compile, run_with_hooks, SimConfig};

    fn run_variant(
        variant: CicVariant,
        prog: &acfc_mpsl::Program,
        n: usize,
        interval_us: u64,
        skew_us: u64,
    ) -> acfc_sim::Trace {
        let cfg = SimConfig::new(n);
        let mut hooks = CicProtocol::new(variant, n, interval_us, skew_us);
        run_with_hooks(&compile(prog), &cfg, &mut hooks)
    }

    #[test]
    fn skewed_timers_force_checkpoints() {
        let p = acfc_mpsl::programs::ring(8, 2048);
        for variant in CicVariant::all() {
            let t = run_variant(variant, &p, 4, 25_000, 9_000);
            assert!(t.completed());
            assert!(t.metrics.timer_checkpoints > 0);
            assert!(
                t.metrics.forced_checkpoints > 0,
                "{}: skewed CIC must force checkpoints",
                variant.name()
            );
            assert_eq!(t.metrics.app_checkpoints, 0);
            assert_eq!(
                t.metrics.control_messages,
                0,
                "{}: CIC piggybacks, no extra messages",
                variant.name()
            );
        }
    }

    #[test]
    fn forced_checkpoints_precede_the_triggering_recv() {
        let p = acfc_mpsl::programs::pingpong(6);
        let cfg = SimConfig::new(2);
        let mut hooks = IndexBasedCic::new(2, 15_000, 8_000);
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        // Index invariant of the founding member: no received message
        // may carry an index greater than the receiver's at receive
        // time.
        let idx = IntervalIndex::from_trace(&t);
        for m in t.live_messages() {
            if let Some(rs) = m.recv_step {
                let recv_index = idx.interval_of(m.to, rs);
                assert!(
                    recv_index >= m.piggyback,
                    "receive at index {recv_index} consumed index-{} message",
                    m.piggyback
                );
            }
        }
    }

    #[test]
    fn same_index_cuts_are_consistent() {
        // The founding member's guarantee: the aligned cut at the
        // minimum common index is a recovery line.
        let p = acfc_mpsl::programs::stencil_1d(8);
        let t = run_variant(CicVariant::Index, &p, 4, 20_000, 6_000);
        assert!(t.completed());
        let depth = t.aligned_depth() as u64;
        assert!(depth > 0, "workload must checkpoint");
        // Every aligned cut is consistent under the catch-up rule...
        for i in 1..=depth {
            assert!(
                acfc_sim::consistency::cut_consistency(&t, &vec![i; t.nprocs]),
                "aligned cut {i} inconsistent under CIC"
            );
        }
        // ...and therefore the maximal consistent line dominates the
        // deepest aligned cut (consistent cuts are closed under join).
        let line = max_consistent_line_of(&t);
        for p in 0..t.nprocs {
            assert!(line[p] >= depth, "line {line:?} vs aligned depth {depth}");
        }
    }

    #[test]
    fn dense_communication_forces_more() {
        // Holds for the eager members, whose indexes advance at every
        // timer checkpoint regardless of traffic. Lazy is the designed
        // exception — dense traffic keeps its send-bumped indexes in
        // lockstep — pinned separately below.
        for variant in [CicVariant::Index, CicVariant::Bcs, CicVariant::Hmnr] {
            let sparse = run_variant(variant, &acfc_mpsl::programs::ring(4, 64), 4, 25_000, 9_000);
            let dense = run_variant(variant, &acfc_mpsl::programs::jacobi(12), 4, 25_000, 9_000);
            assert!(sparse.completed() && dense.completed());
            assert!(
                dense.metrics.forced_checkpoints >= sparse.metrics.forced_checkpoints,
                "{}: denser communication should not force fewer checkpoints",
                variant.name()
            );
        }
    }

    #[test]
    fn lazy_indexing_soaks_up_density() {
        // The lazy pitch (an empirical pin, not a theorem): indexes
        // that only bump at the first send after a checkpoint stay in
        // lockstep under steady traffic, so lazy forces no more than
        // BCS on both a sparse ring and a dense stencil — and on the
        // dense one the eager members force strictly more.
        for prog in [
            acfc_mpsl::programs::ring(4, 64),
            acfc_mpsl::programs::jacobi(12),
        ] {
            let lazy = run_variant(CicVariant::Lazy, &prog, 4, 25_000, 9_000);
            let bcs = run_variant(CicVariant::Bcs, &prog, 4, 25_000, 9_000);
            assert!(lazy.completed() && bcs.completed());
            assert!(
                lazy.metrics.forced_checkpoints <= bcs.metrics.forced_checkpoints,
                "lazy {} vs bcs {}",
                lazy.metrics.forced_checkpoints,
                bcs.metrics.forced_checkpoints
            );
        }
        let dense = run_variant(
            CicVariant::Lazy,
            &acfc_mpsl::programs::jacobi(12),
            4,
            25_000,
            9_000,
        );
        let eager = run_variant(
            CicVariant::Bcs,
            &acfc_mpsl::programs::jacobi(12),
            4,
            25_000,
            9_000,
        );
        assert!(dense.metrics.forced_checkpoints < eager.metrics.forced_checkpoints);
    }

    #[test]
    fn bcs_jumps_where_index_catches_up() {
        // Same traffic, same timers: the founding member forces once
        // per lag unit, BCS once per lagging receive — so BCS can
        // never force more.
        for prog in [
            acfc_mpsl::programs::jacobi(12),
            acfc_mpsl::programs::pingpong(10),
            acfc_mpsl::programs::master_worker(8),
        ] {
            let index = run_variant(CicVariant::Index, &prog, 4, 25_000, 9_000);
            let bcs = run_variant(CicVariant::Bcs, &prog, 4, 25_000, 9_000);
            assert!(
                bcs.metrics.forced_checkpoints <= index.metrics.forced_checkpoints,
                "{}: BCS forced {} > Index forced {}",
                prog.name,
                bcs.metrics.forced_checkpoints,
                index.metrics.forced_checkpoints
            );
        }
    }

    #[test]
    fn hmnr_sent_conjunct_weakens_bcs() {
        // HMNR's force predicate is BCS's with an extra "receiver has
        // sent in its current interval" conjunct, so on identical
        // traffic it forces at most as often.
        for prog in [
            acfc_mpsl::programs::jacobi(12),
            acfc_mpsl::programs::stencil_1d(10),
            acfc_mpsl::programs::master_worker(8),
        ] {
            let bcs = run_variant(CicVariant::Bcs, &prog, 4, 25_000, 9_000);
            let hmnr = run_variant(CicVariant::Hmnr, &prog, 4, 25_000, 9_000);
            assert!(
                hmnr.metrics.forced_checkpoints <= bcs.metrics.forced_checkpoints,
                "{}: HMNR forced {} > BCS forced {}",
                prog.name,
                hmnr.metrics.forced_checkpoints,
                bcs.metrics.forced_checkpoints
            );
        }
    }

    #[test]
    fn piggyback_bits_ordered_scalar_below_vector() {
        let p = acfc_mpsl::programs::jacobi(8);
        let n = 4;
        let cfg = SimConfig::new(n);
        let mut bits = Vec::new();
        for variant in CicVariant::all() {
            let mut hooks = CicProtocol::new(variant, n, 25_000, 9_000);
            let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
            assert!(t.completed());
            assert_eq!(
                hooks.piggyback_bits(),
                t.metrics.app_messages * hooks.indexing.stamp_bits(0),
                "{}: bits must meter every app message",
                variant.name()
            );
            bits.push((variant, hooks.piggyback_bits()));
        }
        let scalar = bits[0].1; // Index; BCS and Lazy match it.
        assert_eq!(bits[1].1, scalar);
        assert_eq!(bits[3].1, scalar);
        assert!(
            bits[2].1 > scalar,
            "vector-carrying HMNR must pay more piggyback bits: {bits:?}"
        );
    }

    #[test]
    fn every_variant_is_z_cycle_free() {
        for variant in CicVariant::all() {
            for prog in [
                acfc_mpsl::programs::jacobi(10),
                acfc_mpsl::programs::pingpong(8),
                acfc_mpsl::programs::master_worker(6),
            ] {
                let t = run_variant(variant, &prog, 4, 25_000, 9_000);
                assert!(t.completed());
                assert_eq!(
                    useless_checkpoints(&t),
                    vec![],
                    "{} on {} has useless checkpoints",
                    variant.name(),
                    prog.name
                );
            }
        }
    }
}
