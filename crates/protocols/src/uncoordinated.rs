//! The uncoordinated baseline.
//!
//! Every process checkpoints on its own timer, completely independently
//! (§1's second family). There is zero checkpoint-time overhead beyond
//! the checkpoints themselves — but nothing guarantees the latest
//! checkpoints are consistent, so recovery must run rollback
//! propagation over the dependency graph and may cascade (the domino
//! effect).

use acfc_sim::{CutPicker, TimerCheckpoints};

/// Hooks for the uncoordinated protocol: independent, skewed timers;
/// application checkpoint statements suppressed.
pub fn uncoordinated_hooks(nprocs: usize, interval_us: u64, skew_us: u64) -> TimerCheckpoints {
    TimerCheckpoints::new(nprocs, interval_us, skew_us)
}

/// The uncoordinated recovery-line picker: on failure, compute the
/// **maximal consistent global checkpoint** by rollback propagation and
/// restore it (possibly all the way back to the initial states).
pub fn uncoordinated_picker() -> CutPicker {
    crate::depgraph::max_consistent_picker()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_sim::{compile, run_with_failures, FailurePlan, SimConfig, SimTime};

    #[test]
    fn recovery_uses_a_consistent_line_and_completes() {
        let p = acfc_mpsl::programs::jacobi(6);
        let cfg = SimConfig::new(3);
        let mut hooks = uncoordinated_hooks(3, 20_000, 7_000);
        let plan = FailurePlan::at(vec![(SimTime::from_millis(150), 1)]);
        let t = run_with_failures(&compile(&p), &cfg, &mut hooks, plan, uncoordinated_picker());
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.failures.len(), 1);
        // The restored line never exceeds what each process had.
        let f = &t.failures[0];
        assert_eq!(f.restored_seq.len(), 3);
    }

    #[test]
    fn domino_prone_workload_restarts_from_scratch() {
        // One-way stream with unlucky skew: the receiver's checkpoints
        // are always orphaned, so recovery falls back to the start.
        let p = acfc_mpsl::parse(
            "program stream; var i;
             for i in 0..8 {
               if rank == 0 { compute 10; send to 1 size 64; }
               if rank == 1 { recv from 0; compute 1; }
             }",
        )
        .unwrap();
        let cfg = SimConfig::new(2);
        // Rank 0 checkpoints right after sending (skew places its timer
        // just after each send); rank 1 just after receiving.
        let mut hooks = uncoordinated_hooks(2, 11_000, 2_000);
        let plan = FailurePlan::at(vec![(SimTime::from_millis(60), 0)]);
        let t = run_with_failures(&compile(&p), &cfg, &mut hooks, plan, uncoordinated_picker());
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.failures.len(), 1);
        // Whatever line was picked, lost work is nonzero.
        assert!(t.failures[0].lost_us > 0);
    }
}
