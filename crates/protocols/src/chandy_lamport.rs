//! The Chandy–Lamport distributed-snapshots protocol.
//!
//! §4.1: in a fully connected network of `n` nodes, C-L generates
//! `2n(n−1)` marker messages per snapshot, each 8 bits, giving
//! `M(C-L) = 2n(n−1)(w_m + 8·w_b)`. Unlike SaS it does not stop the
//! world: the initiator checkpoints and floods markers; every other
//! process checkpoints upon its first marker and relays markers on all
//! outgoing channels, recording channel state until markers return.
//!
//! Modelling: snapshot waves start at multiples of the interval `T`;
//! the initiator (rank 0) checkpoints at the wave boundary and every
//! other process at the boundary plus one marker propagation delay
//! (first-marker arrival in a fully connected network). Channel-state
//! recording is charged as a per-checkpoint stall proportional to the
//! process's channel count; the `2n(n−1)` markers are charged to the
//! metrics on the initiator, once per wave. Application `checkpoint`
//! statements are suppressed.

use acfc_sim::{CoordinationCost, Hooks, NetworkModel, SimTime};

/// Per-wave marker count in a fully connected network: `2n(n−1)`.
pub fn cl_control_messages(n: usize) -> u64 {
    2 * (n as u64) * (n as u64 - 1)
}

/// Per-wave message overhead `M(C-L)` in microseconds, 8-bit markers.
pub fn cl_message_overhead_us(n: usize, net: &NetworkModel) -> u64 {
    cl_control_messages(n) * net.base_delay_us(8)
}

/// Chandy–Lamport protocol hooks.
#[derive(Debug, Clone)]
pub struct ChandyLamport {
    nprocs: usize,
    interval_us: u64,
    next_wave: Vec<u64>,
    /// Extra stall per checkpoint for recording incoming-channel state.
    pub channel_record_us: u64,
    /// Marker size in bits.
    pub control_bits: u64,
}

impl ChandyLamport {
    /// A C-L schedule with snapshot waves every `interval_us`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_us == 0` or `nprocs == 0`.
    pub fn new(nprocs: usize, interval_us: u64, net: NetworkModel) -> ChandyLamport {
        assert!(interval_us > 0, "interval must be positive");
        assert!(nprocs > 0, "need at least one process");
        let marker_delay_us = net.base_delay_us(8);
        ChandyLamport {
            nprocs,
            interval_us,
            // Non-initiators checkpoint one marker hop later.
            next_wave: (0..nprocs)
                .map(|p| interval_us + if p == 0 { 0 } else { marker_delay_us })
                .collect(),
            channel_record_us: (nprocs as u64 - 1) * 10,
            control_bits: 8,
        }
    }
}

impl Hooks for ChandyLamport {
    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    fn timer_trigger(&mut self, _p: usize) -> acfc_sim::CkptTrigger {
        acfc_sim::CkptTrigger::Coordinated
    }

    fn timer_checkpoint_due(&mut self, p: usize, now: SimTime) -> bool {
        if now.as_micros() >= self.next_wave[p] {
            let mut due = self.next_wave[p];
            while due <= now.as_micros() {
                due += self.interval_us;
            }
            self.next_wave[p] = due;
            true
        } else {
            false
        }
    }

    fn coordination_cost(&mut self, p: usize, _now: SimTime) -> CoordinationCost {
        acfc_obs::count(
            "protocols/chandy_lamport/channel_record_us",
            self.channel_record_us,
        );
        if p == 0 {
            acfc_obs::count(
                "protocols/chandy_lamport/marker_messages",
                cl_control_messages(self.nprocs),
            );
        }
        CoordinationCost {
            stall_us: self.channel_record_us,
            control_messages: if p == 0 {
                cl_control_messages(self.nprocs)
            } else {
                0
            },
            control_bits: if p == 0 {
                cl_control_messages(self.nprocs) * self.control_bits
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_sim::{compile, run_with_hooks, SimConfig};

    #[test]
    fn marker_count_formula() {
        assert_eq!(cl_control_messages(2), 4);
        assert_eq!(cl_control_messages(4), 24);
        let net = NetworkModel {
            setup_us: 50,
            per_bit_ns: 0,
            jitter_us: 0,
        };
        assert_eq!(cl_message_overhead_us(4, &net), 24 * 50);
    }

    #[test]
    fn waves_reach_everyone_with_marker_skew() {
        let p = acfc_mpsl::programs::jacobi(8);
        let cfg = SimConfig::new(3);
        let mut hooks = ChandyLamport::new(3, 40_000, cfg.net.clone());
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        assert!(t.metrics.coordinated_checkpoints > 0);
        assert_eq!(t.metrics.app_checkpoints, 0);
        // Non-initiators take their wave checkpoints at least one
        // marker delay after the initiator's.
        let c0: Vec<_> = t
            .checkpoints
            .iter()
            .filter(|c| c.proc == 0)
            .map(|c| c.start)
            .collect();
        let c1: Vec<_> = t
            .checkpoints
            .iter()
            .filter(|c| c.proc == 1)
            .map(|c| c.start)
            .collect();
        assert!(!c0.is_empty() && !c1.is_empty());
        assert!(c1[0] >= c0[0]);
    }

    #[test]
    fn markers_charged_per_wave_on_initiator() {
        let p = acfc_mpsl::programs::jacobi(8);
        let cfg = SimConfig::new(4);
        let mut hooks = ChandyLamport::new(4, 40_000, cfg.net.clone());
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        let waves = t
            .checkpoints
            .iter()
            .filter(|c| c.proc == 0 && !c.rolled_back)
            .count() as u64;
        assert_eq!(t.metrics.control_messages, waves * cl_control_messages(4));
    }

    #[test]
    fn latest_wave_checkpoints_form_a_recovery_line() {
        use crate::depgraph::max_consistent_line_of;
        // C-L's raison d'être: the snapshot is consistent. In our
        // model the wave checkpoints are closely synchronised, so the
        // maximal consistent line should keep (nearly) all of them.
        let p = acfc_mpsl::programs::jacobi(10);
        let cfg = SimConfig::new(3);
        let mut hooks = ChandyLamport::new(3, 60_000, cfg.net.clone());
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        let counts: Vec<u64> = t.checkpoint_counts().iter().map(|&c| c as u64).collect();
        let line = max_consistent_line_of(&t);
        for p in 0..t.nprocs {
            assert!(
                counts[p] - line[p] <= 1,
                "wave checkpoints should be near-consistent: counts {counts:?} line {line:?}"
            );
        }
    }
}
