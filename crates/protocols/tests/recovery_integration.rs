//! Cross-protocol recovery integration: every protocol must survive
//! injected failures, recover from a *consistent* line, and finish the
//! computation with the correct results.

use acfc_mpsl::{parse, programs};
use acfc_protocols::{
    uncoordinated_hooks, uncoordinated_picker, AppDriven, ChandyLamport, IndexBasedCic,
    IntervalIndex, SyncAndStop,
};
use acfc_sim::{
    compile, run, run_with_failures, CutPicker, FailurePlan, Hooks, SimConfig, SimTime, Trace,
};

fn storm() -> FailurePlan {
    FailurePlan::at(vec![
        (SimTime::from_millis(90), 0),
        (SimTime::from_millis(210), 1),
        (SimTime::from_millis(330), 2),
    ])
}

/// The restored line at each failure must satisfy the no-orphan
/// definition against the (post-hoc known) message history.
fn restored_lines_consistent(trace: &Trace) {
    let idx = IntervalIndex::from_trace(trace);
    for f in &trace.failures {
        for m in trace.live_messages() {
            let (Some(rs), Some(sc), Some(rc)) = (
                m.recv_step,
                f.restored_seq[m.from].or(Some(0)),
                f.restored_seq[m.to].or(Some(0)),
            ) else {
                continue;
            };
            // Only judge messages that existed by the failure time.
            if m.sent_at > f.at {
                continue;
            }
            let orphan =
                idx.interval_of(m.from, m.send_step) >= sc && idx.interval_of(m.to, rs) < rc;
            assert!(
                !orphan,
                "failure at {:?} restored an inconsistent line {:?}",
                f.at, f.restored_seq
            );
        }
    }
}

#[test]
fn app_driven_survives_a_failure_storm() {
    let p = programs::jacobi(8);
    let ad = AppDriven::prepare(&p, 3).unwrap();
    let mut hooks = ad.hooks();
    let t = run_with_failures(
        &ad.compiled,
        &SimConfig::new(3),
        &mut hooks,
        storm(),
        ad.picker(),
    );
    assert!(t.completed(), "{:?}", t.outcome);
    assert_eq!(t.metrics.failures, 3);
    assert_eq!(t.checkpoint_counts(), vec![8, 8, 8]);
    restored_lines_consistent(&t);
}

#[test]
fn sas_survives_a_failure_storm() {
    let p = programs::jacobi(8);
    let cfg = SimConfig::new(3);
    let mut hooks = SyncAndStop::new(3, 60_000, cfg.net.clone());
    let t = run_with_failures(
        &compile(&p),
        &cfg,
        &mut hooks,
        storm(),
        CutPicker::LatestPerProcess,
    );
    assert!(t.completed(), "{:?}", t.outcome);
    assert_eq!(t.metrics.failures, 3);
}

#[test]
fn chandy_lamport_survives_a_failure_storm() {
    let p = programs::jacobi(8);
    let cfg = SimConfig::new(3);
    let mut hooks = ChandyLamport::new(3, 60_000, cfg.net.clone());
    let t = run_with_failures(
        &compile(&p),
        &cfg,
        &mut hooks,
        storm(),
        CutPicker::LatestPerProcess,
    );
    assert!(t.completed(), "{:?}", t.outcome);
    assert_eq!(t.metrics.failures, 3);
}

#[test]
fn cic_survives_a_failure_storm_with_aligned_recovery() {
    let p = programs::jacobi(8);
    let cfg = SimConfig::new(3);
    let mut hooks = IndexBasedCic::new(3, 40_000, 13_000);
    let t = run_with_failures(
        &compile(&p),
        &cfg,
        &mut hooks,
        storm(),
        CutPicker::AlignedSeq,
    );
    assert!(t.completed(), "{:?}", t.outcome);
    assert_eq!(t.metrics.failures, 3);
    restored_lines_consistent(&t);
}

#[test]
fn uncoordinated_survives_with_rollback_propagation() {
    let p = programs::jacobi(8);
    let cfg = SimConfig::new(3);
    let mut hooks = uncoordinated_hooks(3, 45_000, 17_000);
    let t = run_with_failures(
        &compile(&p),
        &cfg,
        &mut hooks,
        storm(),
        uncoordinated_picker(),
    );
    assert!(t.completed(), "{:?}", t.outcome);
    assert_eq!(t.metrics.failures, 3);
    restored_lines_consistent(&t);
}

#[test]
fn recovered_computation_produces_the_failure_free_state() {
    // A program with a nontrivial accumulator: recovery must replay to
    // the identical final variable state under every protocol picker.
    let src = "program acc; param iters = 8; var i, total;
        for i in 0..iters {
          total := total + (rank + 1) * i;
          compute 15;
          send to (rank + 1) % nprocs size 256;
          recv from (rank - 1) % nprocs;
          checkpoint;
        }";
    let p = parse(src).unwrap();
    let c = compile(&p);
    let cfg = SimConfig::new(3);
    let clean = run(&c, &cfg);
    assert!(clean.completed());
    let final_vars = |t: &Trace, proc: usize| {
        t.live_checkpoints(proc)
            .last()
            .unwrap()
            .snapshot
            .vars
            .clone()
    };
    let ad = AppDriven::prepare(&p, 3).unwrap();
    let mut hooks = ad.hooks();
    let failed = run_with_failures(&ad.compiled, &cfg, &mut hooks, storm(), ad.picker());
    assert!(failed.completed(), "{:?}", failed.outcome);
    for proc in 0..3 {
        assert_eq!(
            final_vars(&clean, proc)["total"],
            final_vars(&failed, proc)["total"],
            "proc {proc} diverged after recovery"
        );
    }
}

#[test]
fn protocols_do_not_interfere_with_application_semantics() {
    // Message payloads/volume identical across protocols (checkpoints
    // are transparent to the application).
    let p = programs::stencil_1d(5);
    let cfg = SimConfig::new(4);
    let bare = run(&compile(&p), &cfg);
    let mut sas: Box<dyn Hooks> = Box::new(SyncAndStop::new(4, 70_000, cfg.net.clone()));
    let with_sas = acfc_sim::run_with_hooks(&compile(&p), &cfg, sas.as_mut());
    assert_eq!(bare.metrics.app_messages, with_sas.metrics.app_messages);
    assert_eq!(bare.metrics.app_bits, with_sas.metrics.app_bits);
}
