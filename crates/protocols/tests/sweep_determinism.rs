//! The sweep's determinism pin: the streamed aggregate rows are
//! **bit-identical** regardless of worker count. Cells may finish out
//! of order under work-stealing, but the reorder buffer emits them in
//! plan order, and each cell's trials run in trial order on one worker
//! — so the JSONL byte stream at `threads = 1` must equal the stream at
//! `threads = 8` exactly.

use acfc_protocols::{
    run_sweep_threads, CollectSink, JsonlSink, SweepPlan, TableSink, TelemetrySink, Workload,
};

fn plan() -> SweepPlan {
    SweepPlan::builder()
        .ns([2usize, 4])
        .seeds_per_cell(3)
        .failure_rates([0.0, 1.0])
        .workload(Workload::jacobi())
        .seed(0xD15C0)
        .build()
        .unwrap()
}

fn jsonl_at(threads: usize) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    run_sweep_threads(&plan(), threads, &mut [&mut sink]);
    sink.into_inner()
}

#[test]
fn jsonl_stream_is_bit_identical_across_thread_counts() {
    let serial = jsonl_at(1);
    assert!(!serial.is_empty());
    for threads in [2, 8] {
        let parallel = jsonl_at(threads);
        assert_eq!(
            serial, parallel,
            "aggregate rows diverged between 1 and {threads} workers"
        );
    }
    // Every line is a self-contained JSON object with the CI columns.
    let text = String::from_utf8(serial).unwrap();
    assert_eq!(text.lines().count(), plan().total_cells());
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"overhead_ratio\":{\"mean\":"), "{line}");
    }
}

#[test]
fn table_rows_and_collected_rows_agree_across_thread_counts() {
    let mut t1 = TableSink::new(Vec::new());
    let mut c1 = CollectSink::default();
    run_sweep_threads(&plan(), 1, &mut [&mut t1, &mut c1]);
    let mut t8 = TableSink::new(Vec::new());
    let mut c8 = CollectSink::default();
    run_sweep_threads(&plan(), 8, &mut [&mut t8, &mut c8]);

    let strip_footer = |bytes: Vec<u8>| {
        let text = String::from_utf8(bytes).unwrap();
        // The footer carries wall-clock timing; everything above it is
        // pinned.
        let rows: Vec<&str> = text.lines().filter(|l| !l.contains("cells/s")).collect();
        rows.join("\n")
    };
    assert_eq!(strip_footer(t1.into_inner()), strip_footer(t8.into_inner()));

    assert_eq!(c1.rows.len(), c8.rows.len());
    for (a, b) in c1.rows.iter().zip(&c8.rows) {
        assert_eq!(a.json().render_line(), b.json().render_line());
        // The pooled histograms agree bucket-for-bucket, not just in
        // their rendered percentiles.
        assert_eq!(a.latency, b.latency);
    }
}

#[test]
fn telemetry_does_not_perturb_the_row_stream() {
    // With a TelemetrySink riding alongside, the JSONL row bytes stay
    // identical to a telemetry-free run at every thread count, and the
    // trailer stays a single separate line.
    let bare = jsonl_at(1);
    for threads in [1, 2, 8] {
        let mut rows = JsonlSink::new(Vec::new());
        let mut telemetry = TelemetrySink::new(Vec::new());
        run_sweep_threads(&plan(), threads, &mut [&mut rows, &mut telemetry]);
        assert_eq!(
            bare,
            rows.into_inner(),
            "telemetry perturbed the row stream at {threads} workers"
        );
        let trailer = String::from_utf8(telemetry.into_inner()).unwrap();
        assert_eq!(trailer.lines().count(), 1);
        assert!(trailer.starts_with("{\"type\":\"sweep_telemetry\""));
    }
}
