//! Cross-protocol invariants behind the comparison dashboard: the
//! numbers `acfc compare` tabulates are only meaningful if the
//! protocols actually behave as labeled. Pins, over seeded workloads
//! and failure plans:
//!
//! * the application-driven protocol is *coordination-free as
//!   measured* — zero forced checkpoints, zero control messages, zero
//!   coordination stall;
//! * the coordinated baselines really do coordinate — nonzero control
//!   traffic (SaS, C-L) or forced checkpoints (CIC);
//! * every protocol's restored recovery lines pass the
//!   `acfc_sim::consistency` checkers (vector-clock violations and the
//!   orphan-message oracle agree: no orphans).

use acfc_mpsl::{programs, Program};
use acfc_protocols::{run_protocol, run_protocol_timeline, CompareConfig, ProtocolKind};
use acfc_sim::{consistency, FailurePlan, SimTime, Trace};

/// Seeded workloads: (program, nprocs) pairs with distinct
/// communication shapes.
fn workloads() -> Vec<(Program, usize)> {
    vec![
        (programs::jacobi(8), 4),
        (programs::stencil_1d(6), 4),
        (programs::master_worker(6), 4),
    ]
}

/// A fixed three-failure storm that reliably forces rollbacks on the
/// workloads above.
fn storm() -> FailurePlan {
    FailurePlan::at(vec![
        (SimTime::from_millis(90), 0),
        (SimTime::from_millis(210), 1),
        (SimTime::from_millis(330), 2),
    ])
}

fn seeded_config(n: usize, seed: u64) -> CompareConfig {
    CompareConfig::builder(n)
        .seed(seed)
        .failures(FailurePlan::exponential(
            n,
            1.0,
            SimTime::from_millis(400),
            seed,
        ))
        .build()
        .unwrap()
}

#[test]
fn app_driven_is_coordination_free_on_every_seeded_workload() {
    for (program, n) in workloads() {
        for seed in [1u64, 7, 42] {
            let cfg = seeded_config(n, seed);
            let s = run_protocol(&program, ProtocolKind::AppDriven, &cfg);
            let ctx = format!("{} n={n} seed={seed}", program.name);
            assert!(s.completed, "{ctx}: did not complete");
            assert_eq!(s.forced, 0, "{ctx}: forced checkpoints");
            assert_eq!(s.control_messages, 0, "{ctx}: control messages");
            assert_eq!(s.control_bits, 0, "{ctx}: control bits");
            assert_eq!(s.coord_stall_us, 0, "{ctx}: coordination stall");
        }
    }
}

#[test]
fn coordinated_baselines_pay_measurable_coordination() {
    for (program, n) in workloads() {
        let cfg = seeded_config(n, 3);
        let ctx = &program.name;
        let sas = run_protocol(&program, ProtocolKind::SyncAndStop, &cfg);
        assert!(sas.completed && sas.control_messages > 0, "{ctx}: SaS");
        assert!(sas.coord_stall_us > 0, "{ctx}: SaS stall");
        let cl = run_protocol(&program, ProtocolKind::ChandyLamport, &cfg);
        assert!(cl.completed && cl.control_messages > 0, "{ctx}: C-L");
        // CIC coordinates through the data plane instead: piggybacked
        // indices force checkpoints but send no extra messages.
        let cic = run_protocol(&program, ProtocolKind::IndexCic, &cfg);
        assert!(cic.completed, "{ctx}: CIC");
        assert_eq!(cic.control_messages, 0, "{ctx}: CIC piggybacks only");
        assert!(cic.forced > 0, "{ctx}: CIC forced checkpoints");
    }
}

/// Checks every failure's restored line that survives to the end of
/// the run (later failures can discard a restored checkpoint, in which
/// case the cut no longer resolves); returns how many were checked.
fn restored_lines_pass_consistency(trace: &Trace, ctx: &str) -> usize {
    let mut checked = 0;
    for f in &trace.failures {
        let Some(cut): Option<Vec<u64>> = f.restored_seq.iter().copied().collect() else {
            continue; // a process restored to its initial state
        };
        let Some(records) = consistency::resolve_cut(trace, &cut) else {
            continue;
        };
        let violations = consistency::cut_violations(&records);
        assert!(
            violations.is_empty(),
            "{ctx}: restored line {cut:?} at {:?} has clock violations: {violations:?}",
            f.at
        );
        assert!(
            consistency::cut_consistency_oracle(trace, &cut),
            "{ctx}: restored line {cut:?} at {:?} orphans a message",
            f.at
        );
        checked += 1;
    }
    checked
}

#[test]
fn every_protocols_recovery_line_is_consistent() {
    let mut checked = 0;
    for (program, n) in workloads() {
        for kind in ProtocolKind::all() {
            let cfg = CompareConfig::builder(n).failures(storm()).build().unwrap();
            let (trace, _obs) = run_protocol_timeline(&program, kind, &cfg);
            let ctx = format!("{} under {}", program.name, kind.name());
            assert!(trace.completed(), "{ctx}: did not complete");
            assert_eq!(trace.metrics.failures, 3, "{ctx}");
            checked += restored_lines_pass_consistency(&trace, &ctx);
            if kind == ProtocolKind::AppDriven {
                // The paper's guarantee is stronger for app-driven:
                // *every* straight cut is a recovery line, not just the
                // ones recovery happened to use.
                assert!(
                    consistency::all_straight_cuts_consistent(&trace),
                    "{ctx}: straight cuts {:?}",
                    consistency::straight_cut_failures(&trace)
                );
            }
        }
    }
    assert!(
        checked >= 10,
        "only {checked} restored lines were checkable — storm too weak"
    );
}
