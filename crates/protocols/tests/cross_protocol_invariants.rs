//! Cross-protocol invariants behind the comparison dashboard: the
//! numbers `acfc compare` tabulates are only meaningful if the
//! protocols actually behave as labeled. Pins, over seeded workloads
//! and failure plans:
//!
//! * the application-driven protocol is *coordination-free as
//!   measured* — zero forced checkpoints, zero control messages, zero
//!   coordination stall;
//! * the coordinated baselines really do coordinate — nonzero control
//!   traffic (SaS, C-L) or forced checkpoints (CIC);
//! * every protocol's restored recovery lines pass the
//!   `acfc_sim::consistency` checkers (vector-clock violations and the
//!   orphan-message oracle agree: no orphans).

use acfc_mpsl::{programs, Program};
use acfc_protocols::{
    run_protocol, run_protocol_timeline, CicVariant, CompareConfig, ProtocolKind,
};
use acfc_sim::{consistency, FailurePlan, SimTime, Trace};

/// Seeded workloads: (program, nprocs) pairs with distinct
/// communication shapes.
fn workloads() -> Vec<(Program, usize)> {
    vec![
        (programs::jacobi(8), 4),
        (programs::stencil_1d(6), 4),
        (programs::master_worker(6), 4),
    ]
}

/// A fixed three-failure storm that reliably forces rollbacks on the
/// workloads above.
fn storm() -> FailurePlan {
    FailurePlan::at(vec![
        (SimTime::from_millis(90), 0),
        (SimTime::from_millis(210), 1),
        (SimTime::from_millis(330), 2),
    ])
}

fn seeded_config(n: usize, seed: u64) -> CompareConfig {
    CompareConfig::builder(n)
        .seed(seed)
        .failures(FailurePlan::exponential(
            n,
            1.0,
            SimTime::from_millis(400),
            seed,
        ))
        .build()
        .unwrap()
}

#[test]
fn app_driven_is_coordination_free_on_every_seeded_workload() {
    for (program, n) in workloads() {
        for seed in [1u64, 7, 42] {
            let cfg = seeded_config(n, seed);
            let s = run_protocol(&program, ProtocolKind::AppDriven, &cfg);
            let ctx = format!("{} n={n} seed={seed}", program.name);
            assert!(s.completed, "{ctx}: did not complete");
            assert_eq!(s.forced, 0, "{ctx}: forced checkpoints");
            assert_eq!(s.control_messages, 0, "{ctx}: control messages");
            assert_eq!(s.control_bits, 0, "{ctx}: control bits");
            assert_eq!(s.coord_stall_us, 0, "{ctx}: coordination stall");
        }
    }
}

#[test]
fn coordinated_baselines_pay_measurable_coordination() {
    for (program, n) in workloads() {
        let cfg = seeded_config(n, 3);
        let ctx = &program.name;
        let sas = run_protocol(&program, ProtocolKind::SyncAndStop, &cfg);
        assert!(sas.completed && sas.control_messages > 0, "{ctx}: SaS");
        assert!(sas.coord_stall_us > 0, "{ctx}: SaS stall");
        let cl = run_protocol(&program, ProtocolKind::ChandyLamport, &cfg);
        assert!(cl.completed && cl.control_messages > 0, "{ctx}: C-L");
        // CIC coordinates through the data plane instead: piggybacked
        // indices force checkpoints but send no extra messages.
        let cic = run_protocol(&program, ProtocolKind::Cic(CicVariant::Index), &cfg);
        assert!(cic.completed, "{ctx}: CIC");
        assert_eq!(cic.control_messages, 0, "{ctx}: CIC piggybacks only");
        assert!(cic.forced > 0, "{ctx}: CIC forced checkpoints");
    }
}

/// Checks every failure's restored line that survives to the end of
/// the run (later failures can discard a restored checkpoint, in which
/// case the cut no longer resolves); returns how many were checked.
fn restored_lines_pass_consistency(trace: &Trace, ctx: &str) -> usize {
    let mut checked = 0;
    for f in &trace.failures {
        let Some(cut): Option<Vec<u64>> = f.restored_seq.iter().copied().collect() else {
            continue; // a process restored to its initial state
        };
        let Some(records) = consistency::resolve_cut(trace, &cut) else {
            continue;
        };
        let violations = consistency::cut_violations(&records);
        assert!(
            violations.is_empty(),
            "{ctx}: restored line {cut:?} at {:?} has clock violations: {violations:?}",
            f.at
        );
        assert!(
            consistency::cut_consistency_oracle(trace, &cut),
            "{ctx}: restored line {cut:?} at {:?} orphans a message",
            f.at
        );
        checked += 1;
    }
    checked
}

#[test]
fn every_protocols_recovery_line_is_consistent() {
    let mut checked = 0;
    for (program, n) in workloads() {
        for kind in ProtocolKind::all() {
            let cfg = CompareConfig::builder(n).failures(storm()).build().unwrap();
            let (trace, _obs) = run_protocol_timeline(&program, kind, &cfg);
            let ctx = format!("{} under {}", program.name, kind.name());
            assert!(trace.completed(), "{ctx}: did not complete");
            assert_eq!(trace.metrics.failures, 3, "{ctx}");
            checked += restored_lines_pass_consistency(&trace, &ctx);
            if kind == ProtocolKind::AppDriven {
                // The paper's guarantee is stronger for app-driven:
                // *every* straight cut is a recovery line, not just the
                // ones recovery happened to use.
                assert!(
                    consistency::all_straight_cuts_consistent(&trace),
                    "{ctx}: straight cuts {:?}",
                    consistency::straight_cut_failures(&trace)
                );
            }
        }
    }
    assert!(
        checked >= 10,
        "only {checked} restored lines were checkable — storm too weak"
    );
}

// ---------------------------------------------------------------------
// Randomized Z-cycle-freedom and differential properties for the CIC
// family, `util::forall`-driven: each case is one
// (workload, n, λ, interval, seed) cell, replayable via
// ACFC_CHECK_CASE (see `acfc_util::check`).
// ---------------------------------------------------------------------

use acfc_protocols::depgraph::{
    useful_by_rollback, useless_checkpoints, useless_checkpoints_in, IntervalIndex,
};
use acfc_protocols::run_protocol_against;
use acfc_util::check::{forall, Gen};

/// One randomized cell: a workload instantiated at a random scale, a
/// process count it supports, and a seeded config with a random
/// checkpoint interval/skew and (sometimes) a random failure storm.
fn random_cell(g: &mut Gen, with_failures: bool) -> (Program, usize, CompareConfig) {
    let (program, n) = match g.usize_in(0, 5) {
        0 => (programs::jacobi(g.i64_in(4, 12)), g.usize_in(2, 7)),
        1 => (programs::stencil_1d(g.i64_in(4, 10)), g.usize_in(2, 7)),
        2 => (programs::master_worker(g.i64_in(4, 9)), g.usize_in(2, 6)),
        3 => (programs::pingpong(g.i64_in(4, 11)), 2),
        _ => (
            programs::ring(g.i64_in(4, 10), 1 << g.i64_in(6, 12)),
            g.usize_in(2, 7),
        ),
    };
    let seed = g.u64_in(1, u64::MAX);
    let lambda = if !with_failures || g.prob(0.3) {
        0.0
    } else {
        g.f64_in(0.5, 4.0)
    };
    let failures = if lambda > 0.0 {
        FailurePlan::exponential(n, lambda, SimTime::from_millis(g.u64_in(150, 450)), seed)
    } else {
        FailurePlan::none()
    };
    let cfg = CompareConfig::builder(n)
        .interval_us(g.u64_in(12_000, 80_000))
        .skew_us(g.u64_in(0, 15_000))
        .seed(seed)
        .failures(failures)
        .build()
        .unwrap();
    (program, n, cfg)
}

#[test]
fn every_cic_variant_is_z_cycle_free_on_randomized_cells() {
    // The family's core guarantee, the paper's "all checkpoints
    // useful": no run of any variant — across random workloads,
    // process counts, failure storms, intervals, and seeds — places a
    // checkpoint on a Z-cycle. 100 randomized cells per variant.
    for variant in CicVariant::all() {
        forall("cic_z_cycle_free", 100, |g| {
            let (program, n, cfg) = random_cell(g, true);
            let (trace, _) = run_protocol_timeline(&program, ProtocolKind::Cic(variant), &cfg);
            let ctx = format!("case {} {} n={n} {}", g.case, program.name, variant.name());
            assert!(trace.completed(), "{ctx}: did not complete");
            let useless = useless_checkpoints(&trace);
            assert!(
                useless.is_empty(),
                "{ctx}: checkpoints on Z-cycles: {useless:?}"
            );
        });
    }
}

#[test]
fn z_cycle_checker_matches_the_rollback_oracle_on_random_traces() {
    // Differential pin of the checker itself, on traces rich in
    // useless checkpoints: uncoordinated skewed timers place
    // checkpoints arbitrarily, so both verdicts occur. Every
    // checkpoint's SCC verdict must match the lattice-fixpoint oracle.
    forall("z_cycle_checker_vs_oracle", 100, |g| {
        let (program, n, cfg) = random_cell(g, true);
        let (trace, _) = run_protocol_timeline(&program, ProtocolKind::Uncoordinated, &cfg);
        let ctx = format!("case {} {} n={n}", g.case, program.name);
        assert!(trace.completed(), "{ctx}: did not complete");
        let idx = IntervalIndex::from_trace(&trace);
        let useless = useless_checkpoints_in(&idx, trace.messages.iter());
        for p in 0..idx.nprocs() {
            for i in 1..=idx.count(p) {
                let on_cycle = useless.contains(&(p, i));
                let useful = useful_by_rollback(&idx, trace.messages.iter(), p, i);
                assert_eq!(
                    useful, !on_cycle,
                    "{ctx}: ({p}, {i}) oracle useful={useful} vs checker on_cycle={on_cycle}"
                );
            }
        }
    });
}

#[test]
fn cic_differential_orderings_hold_on_paired_random_cells() {
    // Paired-seed differential suite: on the *same* failure-free cell
    // (identical program, config, seed),
    //   * HMNR's sent-conjunct can only weaken the BCS predicate:
    //     forced(HMNR) ≤ forced(BCS);
    //   * BCS's index jump can only skip forces the founding member
    //     pays per lag unit: forced(BCS) ≤ forced(Index);
    //   * the app-driven protocol forces nothing, every CIC variant
    //     forces ≥ that zero (trivially) with zero control messages;
    //   * piggyback widths are ordered scalar < vector.
    //
    // The orderings are *pointwise* claims about identical executions,
    // so the cells are failure-free: under a storm the variants restore
    // different recovery lines (aligned-seq vs. maximal consistent),
    // the replays diverge, and only the paired *means* stay ordered —
    // which is what the sweep CI job asserts over JSONL rows.
    forall("cic_differential_orderings", 100, |g| {
        let (program, n, cfg) = random_cell(g, false);
        let ctx = format!("case {} {} n={n}", g.case, program.name);
        // The bare makespan is irrelevant to the counted quantities;
        // share an arbitrary one instead of re-running the baseline.
        let run = |k: ProtocolKind| run_protocol_against(&program, k, &cfg, 1.0);
        let index = run(ProtocolKind::Cic(CicVariant::Index));
        let bcs = run(ProtocolKind::Cic(CicVariant::Bcs));
        let hmnr = run(ProtocolKind::Cic(CicVariant::Hmnr));
        let lazy = run(ProtocolKind::Cic(CicVariant::Lazy));
        let app = run(ProtocolKind::AppDriven);
        for s in [&index, &bcs, &hmnr, &lazy] {
            assert!(s.completed, "{ctx}: {} did not complete", s.protocol.name());
            assert_eq!(s.control_messages, 0, "{ctx}: CIC sends no control");
        }
        assert_eq!(app.forced, 0, "{ctx}: app-driven forces");
        assert!(
            hmnr.forced <= bcs.forced,
            "{ctx}: hmnr {} > bcs {}",
            hmnr.forced,
            bcs.forced
        );
        assert!(
            bcs.forced <= index.forced,
            "{ctx}: bcs {} > index {}",
            bcs.forced,
            index.forced
        );
        // Scalar piggybacks are 64 bits/message for Index, BCS, and
        // lazy alike; HMNR's vector costs strictly more per message.
        assert_eq!(index.piggyback_bits, bcs.piggyback_bits, "{ctx}");
        assert_eq!(index.piggyback_bits, lazy.piggyback_bits, "{ctx}");
        if index.piggyback_bits > 0 {
            assert!(
                hmnr.piggyback_bits > index.piggyback_bits,
                "{ctx}: vector {} !> scalar {}",
                hmnr.piggyback_bits,
                index.piggyback_bits
            );
        }
    });
}

#[test]
fn baseline_restored_cuts_survive_randomized_storms() {
    // The non-CIC baselines' recovery lines under random failure
    // storms: every restored cut that resolves must pass both
    // consistency checkers.
    for kind in [
        ProtocolKind::Uncoordinated,
        ProtocolKind::SyncAndStop,
        ProtocolKind::ChandyLamport,
    ] {
        forall("baseline_restored_cuts", 100, |g| {
            let (program, n, cfg) = random_cell(g, true);
            let (trace, _) = run_protocol_timeline(&program, kind, &cfg);
            let ctx = format!("case {} {} n={n} {}", g.case, program.name, kind.name());
            assert!(trace.completed(), "{ctx}: did not complete");
            restored_lines_pass_consistency(&trace, &ctx);
        });
    }
}
