//! Differential clock-mode test for the vector-carrying HMNR hooks at
//! `n > DENSE_CLOCK_MAX`: the variant piggybacks `64 + n + 64n` bits
//! of protocol state per message through the engine's token channel,
//! and its forced checkpoints must land identically whether the engine
//! transports vector clocks densely or as deltas — the masked golden
//! render of the two runs must be byte-equal (only the per-message
//! clock fields legitimately differ: delta mode never materializes
//! them).
//!
//! Lives in the protocols crate because the sim crate cannot
//! dev-depend on its own dependents; the sim-local analogue with
//! scalar forcing hooks is `crates/sim/tests/clock_modes.rs`.

use acfc_mpsl::programs;
use acfc_protocols::{max_consistent_picker, CicProtocol, CicVariant};
use acfc_sim::{
    compile, golden, run_with_failures, run_with_hooks, ClockMode, FailurePlan, SimConfig, SimTime,
    Trace, DENSE_CLOCK_MAX,
};

fn run_hmnr(n: usize, mode: ClockMode, fail_ms: &[(u64, usize)]) -> Trace {
    let prog = programs::stencil_1d(8);
    let c = compile(&prog);
    let cfg = SimConfig::new(n).with_clock_mode(mode);
    let mut hooks = CicProtocol::new(CicVariant::Hmnr, n, 25_000, 9_000);
    let t = if fail_ms.is_empty() {
        run_with_hooks(&c, &cfg, &mut hooks)
    } else {
        let plan = FailurePlan::at(
            fail_ms
                .iter()
                .map(|&(ms, p)| (SimTime::from_millis(ms), p))
                .collect(),
        );
        run_with_failures(&c, &cfg, &mut hooks, plan, max_consistent_picker())
    };
    assert!(t.completed(), "{mode:?}: {:?}", t.outcome);
    t
}

/// Masks the per-message clock fields (`send_vc`/`recv_vc`) that delta
/// mode leaves empty by design; everything else must match byte for
/// byte.
fn masked(trace: &Trace) -> String {
    golden(trace)
        .lines()
        .map(|line| {
            if !line.starts_with("msg ") {
                return line.to_string();
            }
            line.split(' ')
                .map(|tok| match tok.split_once('=') {
                    Some(("send_vc", _)) => "send_vc=*",
                    Some(("recv_vc", _)) => "recv_vc=*",
                    _ => tok,
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn hmnr_delta_renders_identically_to_dense_above_cutoff() {
    let n = DENSE_CLOCK_MAX + 8;
    let dense = run_hmnr(n, ClockMode::Dense, &[]);
    let delta = run_hmnr(n, ClockMode::Delta, &[]);
    assert!(
        dense.metrics.forced_checkpoints > 0,
        "skewed timers must force through the HMNR predicate"
    );
    assert_eq!(
        dense.metrics.forced_checkpoints,
        delta.metrics.forced_checkpoints
    );
    assert_eq!(masked(&dense), masked(&delta));
}

#[test]
fn hmnr_delta_matches_dense_through_failures() {
    let n = DENSE_CLOCK_MAX + 8;
    let fails = [(60u64, 0usize), (140, n / 2)];
    let dense = run_hmnr(n, ClockMode::Dense, &fails);
    let delta = run_hmnr(n, ClockMode::Delta, &fails);
    assert_eq!(dense.metrics.failures, 2);
    assert_eq!(masked(&dense), masked(&delta));
}
