//! Phase I — static checkpoint insertion and equalisation (§3.1).
//!
//! Two services:
//!
//! * [`insert_checkpoints`] — if the program has no `checkpoint`
//!   statements, insert them at (approximately) optimal intervals, in
//!   the tradition of Chandy–Ramamoorthy \[8\] / Toueg–Babaoğlu \[22\] /
//!   CATCH \[14\]: estimate the execution cost of the code, derive the
//!   optimal checkpoint interval from the checkpoint overhead `o` and
//!   the failure rate `λ` (the first-order optimum `T* = √(2·o/λ)`),
//!   and place checkpoint statements so intervals approximate `T*`.
//! * [`equalize_checkpoints`] — §3.1's closing remark: *"we may
//!   add/remove some of the checkpoints to ensure that every path of the
//!   CFG has the same number of checkpoint nodes."* Pads the lighter arm
//!   of every unbalanced conditional with checkpoints.

use acfc_mpsl::{eval, Block, Env, Expr, Program, Stmt, StmtId, StmtKind};

/// Parameters for checkpoint insertion.
#[derive(Debug, Clone)]
pub struct InsertionConfig {
    /// Checkpoint overhead `o` in cost units (1 unit = 1 simulated ms).
    pub ckpt_overhead_units: f64,
    /// Per-process failure rate `λ` in failures per cost unit.
    pub failure_rate_per_unit: f64,
    /// Estimated trip count for loops whose bounds the analysis cannot
    /// evaluate.
    pub default_trip_count: u64,
    /// Default cost charged for a send/recv statement, in units.
    pub comm_cost_units: f64,
}

impl Default for InsertionConfig {
    fn default() -> InsertionConfig {
        InsertionConfig {
            ckpt_overhead_units: 1_780.0,            // the paper's o = 1.78 s
            failure_rate_per_unit: 1.23e-6 / 1000.0, // λ = 1.23e-6 /s
            default_trip_count: 10,
            comm_cost_units: 1.0,
        }
    }
}

/// The first-order optimal checkpoint interval `T* = √(2·o/λ)`
/// (Young's approximation, the quantity the §3.1 techniques target).
///
/// # Panics
///
/// Panics if either argument is not finite and positive.
pub fn optimal_interval(ckpt_overhead: f64, failure_rate: f64) -> f64 {
    assert!(
        ckpt_overhead.is_finite() && ckpt_overhead > 0.0,
        "overhead must be positive"
    );
    assert!(
        failure_rate.is_finite() && failure_rate > 0.0,
        "failure rate must be positive"
    );
    (2.0 * ckpt_overhead / failure_rate).sqrt()
}

/// What [`insert_checkpoints`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertionReport {
    /// The interval the insertion targeted (cost units).
    pub target_interval: f64,
    /// Estimated total cost of one program execution (cost units).
    pub estimated_cost: f64,
    /// Number of checkpoint statements inserted.
    pub inserted: usize,
}

type Params = std::collections::HashMap<String, i64>;

/// Best-effort static cost of an expression in cost units (params are
/// resolved; anything rank- or input-dependent falls back to `default`).
fn expr_cost(e: &Expr, params: &Params, default: f64) -> f64 {
    let mut env = Env::new(0, 2);
    env.params = params.clone();
    match eval(e, &env) {
        Ok(v) if v >= 0 => v as f64,
        _ => default,
    }
}

fn trip_count(from: &Expr, to: &Expr, params: &Params, cfg: &InsertionConfig) -> f64 {
    let mut env = Env::new(0, 2);
    env.params = params.clone();
    match (eval(from, &env), eval(to, &env)) {
        (Ok(a), Ok(b)) if b > a => (b - a) as f64,
        _ => cfg.default_trip_count as f64,
    }
}

fn block_cost(block: &Block, params: &Params, cfg: &InsertionConfig) -> f64 {
    block.iter().map(|s| stmt_cost(s, params, cfg)).sum()
}

fn stmt_cost(stmt: &Stmt, params: &Params, cfg: &InsertionConfig) -> f64 {
    match &stmt.kind {
        StmtKind::Compute { cost } => expr_cost(cost, params, 1.0),
        StmtKind::Send { .. } | StmtKind::Recv { .. } => cfg.comm_cost_units,
        StmtKind::Bcast { .. } | StmtKind::Exchange { .. } => 2.0 * cfg.comm_cost_units,
        StmtKind::Assign { .. } => 0.0,
        StmtKind::Checkpoint { .. } => 0.0,
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => block_cost(then_branch, params, cfg).max(block_cost(else_branch, params, cfg)),
        StmtKind::While { body, .. } => {
            cfg.default_trip_count as f64 * block_cost(body, params, cfg)
        }
        StmtKind::For { from, to, body, .. } => {
            trip_count(from, to, params, cfg) * block_cost(body, params, cfg)
        }
    }
}

/// Estimated execution cost of the whole program, in cost units.
pub fn estimate_program_cost(program: &Program, cfg: &InsertionConfig) -> f64 {
    let params: Params = program.params.iter().cloned().collect();
    block_cost(&program.body, &params, cfg)
}

/// Inserts checkpoint statements into a program that has none.
///
/// Placement policy (simple, uniform, and documented): a checkpoint is
/// appended to the body of every top-level (outermost) loop whose total
/// estimated cost is at least `T*/2` — the canonical "end of the main
/// sweep" placement of Figure 1 — and, if the program's total cost is at
/// least `T*/2` but no loop qualified, a single checkpoint is appended
/// at the end of the program. Programs that already contain checkpoint
/// statements are left untouched (`inserted == 0`).
pub fn insert_checkpoints(program: &mut Program, cfg: &InsertionConfig) -> InsertionReport {
    let target = optimal_interval(cfg.ckpt_overhead_units, cfg.failure_rate_per_unit);
    let estimated = estimate_program_cost(program, cfg);
    if !program.checkpoint_ids().is_empty() {
        return InsertionReport {
            target_interval: target,
            estimated_cost: estimated,
            inserted: 0,
        };
    }
    let params: Params = program.params.iter().cloned().collect();
    let totals: Vec<f64> = program
        .body
        .iter()
        .map(|s| stmt_cost(s, &params, cfg))
        .collect();
    let mut inserted = 0usize;
    for (stmt, loop_total) in program.body.iter_mut().zip(totals) {
        match &mut stmt.kind {
            StmtKind::While { body, .. } | StmtKind::For { body, .. }
                if loop_total >= target / 2.0 =>
            {
                body.push(Stmt::new(StmtKind::Checkpoint {
                    label: Some("phase1".into()),
                }));
                inserted += 1;
            }
            _ => {}
        }
    }
    if inserted == 0 && estimated >= target / 2.0 {
        program.body.push(Stmt::new(StmtKind::Checkpoint {
            label: Some("phase1".into()),
        }));
        inserted = 1;
    }
    program.renumber();
    InsertionReport {
        target_interval: target,
        estimated_cost: estimated,
        inserted,
    }
}

/// Static checkpoint count of a block: `(min, max)` over the paths
/// through it (loops counted once, as in the CFG's DAG indexing).
pub fn static_count(block: &Block) -> (u32, u32) {
    let mut min = 0u32;
    let mut max = 0u32;
    for s in block {
        let (a, b) = match &s.kind {
            StmtKind::Checkpoint { .. } => (1, 1),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let (tmin, tmax) = static_count(then_branch);
                let (emin, emax) = static_count(else_branch);
                (tmin.min(emin), tmax.max(emax))
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => static_count(body),
            _ => (0, 0),
        };
        min += a;
        max += b;
    }
    (min, max)
}

/// Equalises checkpoint counts across the arms of every conditional
/// (recursively, bottom-up) by **appending** checkpoints to the lighter
/// arm. Returns the number of checkpoints added. After this pass,
/// `static_count(body)` has `min == max`, so the CFG's checkpoint
/// indexing is exact.
pub fn equalize_checkpoints(program: &mut Program) -> usize {
    fn fix_block(block: &mut Block) -> usize {
        let mut added = 0;
        for s in block.iter_mut() {
            match &mut s.kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    added += fix_block(then_branch);
                    added += fix_block(else_branch);
                    let (tmin, tmax) = static_count(then_branch);
                    let (emin, emax) = static_count(else_branch);
                    debug_assert_eq!(tmin, tmax, "children equalised");
                    debug_assert_eq!(emin, emax, "children equalised");
                    use std::cmp::Ordering;
                    let (lighter, diff) = match tmax.cmp(&emax) {
                        Ordering::Less => (&mut *then_branch, emax - tmax),
                        Ordering::Greater => (&mut *else_branch, tmax - emax),
                        Ordering::Equal => continue,
                    };
                    for _ in 0..diff {
                        lighter.push(Stmt::new(StmtKind::Checkpoint {
                            label: Some("equalize".into()),
                        }));
                        added += 1;
                    }
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                    added += fix_block(body);
                }
                _ => {}
            }
        }
        added
    }
    let added = fix_block(&mut program.body);
    if added > 0 {
        program.renumber();
    }
    added
}

/// Rebalances checkpoint counts across the arms of every conditional by
/// **removing** checkpoints from the heavier arm (§3.1 allows both
/// adding and removing). Used by Phase III after a relocation hoists a
/// checkpoint out of one arm to a shared position, which leaves the
/// sibling arm's same-index checkpoint redundant; removing it (rather
/// than padding the other arm forever) lets Algorithm 3.2 converge.
///
/// Only direct-child checkpoints of the heavier arm are removed,
/// preferring ones labelled `equalize` (Phase I artefacts), then
/// unlabelled ones, then any; if the imbalance sits in nested
/// structure the remainder is balanced by *adding* to the lighter arm,
/// as in [`equalize_checkpoints`]. Returns `(removed, added)`.
pub fn rebalance_checkpoints(program: &mut Program) -> (usize, usize) {
    fn removal_priority(s: &Stmt) -> u32 {
        match &s.kind {
            StmtKind::Checkpoint { label: Some(l) } if l == "equalize" => 0,
            StmtKind::Checkpoint { label: None } => 1,
            StmtKind::Checkpoint { label: Some(_) } => 2,
            _ => u32::MAX,
        }
    }
    /// Removes up to `want` direct-child checkpoints from `block`,
    /// best candidates first; returns how many were removed.
    fn remove_direct(block: &mut Block, want: u32) -> u32 {
        let mut removed = 0;
        while removed < want {
            let candidate = block
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.kind, StmtKind::Checkpoint { .. }))
                .min_by_key(|(i, s)| (removal_priority(s), u32::MAX - *i as u32));
            match candidate {
                Some((i, _)) => {
                    block.remove(i);
                    removed += 1;
                }
                None => break,
            }
        }
        removed
    }
    fn fix_block(block: &mut Block) -> (usize, usize) {
        let mut removed = 0;
        let mut added = 0;
        for s in block.iter_mut() {
            match &mut s.kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let (r, a) = fix_block(then_branch);
                    removed += r;
                    added += a;
                    let (r, a) = fix_block(else_branch);
                    removed += r;
                    added += a;
                    let t = static_count(then_branch).1;
                    let e = static_count(else_branch).1;
                    use std::cmp::Ordering;
                    let (heavier, lighter, diff) = match t.cmp(&e) {
                        Ordering::Greater => (&mut *then_branch, &mut *else_branch, t - e),
                        Ordering::Less => (&mut *else_branch, &mut *then_branch, e - t),
                        Ordering::Equal => continue,
                    };
                    let r = remove_direct(heavier, diff);
                    removed += r as usize;
                    for _ in 0..diff - r {
                        lighter.push(Stmt::new(StmtKind::Checkpoint {
                            label: Some("equalize".into()),
                        }));
                        added += 1;
                    }
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                    let (r, a) = fix_block(body);
                    removed += r;
                    added += a;
                }
                _ => {}
            }
        }
        (removed, added)
    }
    let (removed, added) = fix_block(&mut program.body);
    if removed + added > 0 {
        program.renumber();
    }
    (removed, added)
}

/// Convenience: the moved statement ids of all checkpoints inserted by
/// Phase I (labels `phase1` / `equalize`).
pub fn phase1_checkpoint_ids(program: &Program) -> Vec<StmtId> {
    let mut out = Vec::new();
    program.visit(&mut |s| {
        if let StmtKind::Checkpoint { label: Some(l) } = &s.kind {
            if l == "phase1" || l == "equalize" {
                out.push(s.id);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::parse;

    #[test]
    fn optimal_interval_matches_youngs_formula() {
        // o = 2, λ = 1e-4 → T* = sqrt(2*2/1e-4) = 200.
        assert!((optimal_interval(2.0, 1e-4) - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "failure rate must be positive")]
    fn zero_rate_panics() {
        let _ = optimal_interval(1.0, 0.0);
    }

    #[test]
    fn cost_estimation_accounts_for_loops_and_params() {
        let p = parse(
            "program t; param iters = 10; var i;
             for i in 0..iters { compute 5; send to 0; recv from 1; }",
        )
        .unwrap();
        let cfg = InsertionConfig::default();
        // 10 iterations × (5 + 1 + 1).
        assert!((estimate_program_cost(&p, &cfg) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn branch_cost_takes_max_arm() {
        let p = parse("program t; if rank == 0 { compute 10; } else { compute 4; }").unwrap();
        let cfg = InsertionConfig::default();
        assert!((estimate_program_cost(&p, &cfg) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn insertion_targets_hot_loops() {
        let mut p = parse(
            "program t; param iters = 100; var i;
             for i in 0..iters { compute 50; }",
        )
        .unwrap();
        let cfg = InsertionConfig {
            ckpt_overhead_units: 1.0,
            failure_rate_per_unit: 1e-4,
            ..InsertionConfig::default()
        };
        // T* ≈ 141; loop total = 5000 ≥ T*/2 → one checkpoint in body.
        let rep = insert_checkpoints(&mut p, &cfg);
        assert_eq!(rep.inserted, 1);
        assert_eq!(p.checkpoint_ids().len(), 1);
        let StmtKind::For { body, .. } = &p.body[0].kind else {
            panic!()
        };
        assert!(matches!(
            body.last().unwrap().kind,
            StmtKind::Checkpoint { .. }
        ));
    }

    #[test]
    fn insertion_falls_back_to_program_end() {
        let mut p = parse("program t; compute 1000;").unwrap();
        let cfg = InsertionConfig {
            ckpt_overhead_units: 1.0,
            failure_rate_per_unit: 1e-4,
            ..InsertionConfig::default()
        };
        let rep = insert_checkpoints(&mut p, &cfg);
        assert_eq!(rep.inserted, 1);
        assert!(matches!(
            p.body.last().unwrap().kind,
            StmtKind::Checkpoint { .. }
        ));
    }

    #[test]
    fn cheap_programs_get_no_checkpoints() {
        let mut p = parse("program t; compute 1;").unwrap();
        let cfg = InsertionConfig {
            ckpt_overhead_units: 1.0,
            failure_rate_per_unit: 1e-4,
            ..InsertionConfig::default()
        };
        assert_eq!(insert_checkpoints(&mut p, &cfg).inserted, 0);
        assert!(p.checkpoint_ids().is_empty());
    }

    #[test]
    fn existing_checkpoints_left_alone() {
        let mut p = parse("program t; checkpoint; compute 1000;").unwrap();
        let rep = insert_checkpoints(&mut p, &InsertionConfig::default());
        assert_eq!(rep.inserted, 0);
        assert_eq!(p.checkpoint_ids().len(), 1);
    }

    #[test]
    fn static_count_ranges() {
        let p = parse(
            "program t; var x;
             if x > 0 { checkpoint; checkpoint; }
             checkpoint;",
        )
        .unwrap();
        assert_eq!(static_count(&p.body), (1, 3));
    }

    #[test]
    fn equalization_balances_arms() {
        let mut p = parse(
            "program t; var x;
             if x > 0 { checkpoint; checkpoint; } else { checkpoint; }",
        )
        .unwrap();
        let added = equalize_checkpoints(&mut p);
        assert_eq!(added, 1);
        assert_eq!(static_count(&p.body), (2, 2));
        assert_eq!(phase1_checkpoint_ids(&p).len(), 1);
    }

    #[test]
    fn equalization_handles_missing_else() {
        let mut p = parse("program t; var x; if x > 0 { checkpoint; }").unwrap();
        let added = equalize_checkpoints(&mut p);
        assert_eq!(added, 1);
        let StmtKind::If { else_branch, .. } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(else_branch.len(), 1);
        assert_eq!(static_count(&p.body), (1, 1));
    }

    #[test]
    fn equalization_recurses_into_nested_structure() {
        let mut p = parse(
            "program t; var x, i;
             for i in 0..3 {
               if x > 0 {
                 if x > 1 { checkpoint; }
               } else { checkpoint; checkpoint; }
             }",
        )
        .unwrap();
        let added = equalize_checkpoints(&mut p);
        assert!(added >= 2, "{added}");
        assert_eq!(static_count(&p.body).0, static_count(&p.body).1);
    }

    #[test]
    fn balanced_program_untouched() {
        let mut p = acfc_mpsl::programs::jacobi_odd_even(3);
        let before = p.clone();
        assert_eq!(equalize_checkpoints(&mut p), 0);
        assert_eq!(p, before);
    }
}
