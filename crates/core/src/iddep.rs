//! ID-dependence analysis.
//!
//! §3.2: *using any data flow analysis technique, we can specify whether
//! each branch is ID-dependent or not: we first determine the variables
//! and constants that depend on process IDs, and then determine whether
//! each condition expression is ID-dependent.* This module implements
//! that dataflow as a **must constant-propagation of rank expressions**:
//! a per-node environment mapping variables to closed expressions over
//! `rank` / `nprocs` / parameters / `input(·)`, plus a classification of
//! every branch node.

use acfc_cfg::{Cfg, NodeId, NodeKind};
use acfc_mpsl::{rank_eval, Expr, Program, RankEnv, RankVal};
use std::collections::HashMap;

/// Classification of a branch node's condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchClass {
    /// The condition is rank-determined and its truth value differs
    /// across ranks: the paper's *ID-dependent* branch.
    IdDependent,
    /// Rank-determined but identical for every rank (e.g. `0 == 1`):
    /// all processes take the same arm.
    Uniform,
    /// Depends on run-time state the analysis does not track (loop
    /// counters, unresolved variables): still identical across
    /// processes in SPMD (deterministic, same inputs), but the arm
    /// taken is unknown statically.
    Unresolved,
    /// Depends on input data (*irregular*).
    Irregular,
}

/// Result of the ID-dependence dataflow.
#[derive(Debug, Clone)]
pub struct IdDepInfo {
    /// Per-node must-environment: variables resolved to closed rank
    /// expressions (over `rank`, `nprocs`, params, ints, `input`).
    envs: Vec<HashMap<String, Expr>>,
    /// Per-branch-node classification (indexed by node).
    classes: HashMap<NodeId, BranchClass>,
    /// Program parameter defaults (needed by downstream evaluation).
    pub params: HashMap<String, i64>,
}

impl IdDepInfo {
    /// The resolved-variable environment holding **at entry to** `node`.
    pub fn env_at(&self, node: NodeId) -> &HashMap<String, Expr> {
        &self.envs[node.index()]
    }

    /// Classification of a branch node (`None` for non-branch nodes).
    pub fn branch_class(&self, node: NodeId) -> Option<BranchClass> {
        self.classes.get(&node).copied()
    }

    /// `true` iff `node` is an ID-dependent branch.
    pub fn is_id_dependent(&self, node: NodeId) -> bool {
        self.branch_class(node) == Some(BranchClass::IdDependent)
    }
}

/// `true` when `e` is *closed*: mentions only `rank`, `nprocs`,
/// parameters, integers, and `input(·)` — i.e. it can be carried in a
/// must-environment without aliasing mutable state.
fn is_closed(e: &Expr) -> bool {
    !e.mentions_var()
}

/// Runs the dataflow at a sample `n` (used only to classify branches;
/// environments are symbolic and `n`-independent).
pub fn analyze_iddep(cfg: &Cfg, program: &Program) -> IdDepInfo {
    analyze_iddep_at(cfg, program, 8)
}

/// Like [`analyze_iddep`] with an explicit sample `n` for branch
/// classification (`n ≥ 2`; classification compares the condition's
/// truth value across ranks `0..n`).
pub fn analyze_iddep_at(cfg: &Cfg, program: &Program, sample_n: usize) -> IdDepInfo {
    assert!(sample_n >= 2, "need n >= 2 to witness rank dependence");
    let params: HashMap<String, i64> = program.params.iter().cloned().collect();
    let len = cfg.len();
    // Must-analysis lattice: ⊤ = "unvisited" (None), otherwise a map;
    // meet = intersection of equal bindings.
    let mut envs: Vec<Option<HashMap<String, Expr>>> = vec![None; len];
    envs[cfg.entry().index()] = Some(HashMap::new());
    let mut changed = true;
    while changed {
        changed = false;
        for a in cfg.node_ids() {
            let Some(env_in) = envs[a.index()].clone() else {
                continue;
            };
            // Transfer through the node.
            let env_out = transfer(cfg, a, env_in);
            for &(b, _) in cfg.succs(a) {
                let merged = match &envs[b.index()] {
                    None => env_out.clone(),
                    Some(cur) => meet(cur, &env_out),
                };
                if envs[b.index()].as_ref() != Some(&merged) {
                    envs[b.index()] = Some(merged);
                    changed = true;
                }
            }
        }
    }
    let envs: Vec<HashMap<String, Expr>> =
        envs.into_iter().map(|e| e.unwrap_or_default()).collect();
    // Classify branches.
    let mut classes = HashMap::new();
    for b in cfg.branch_nodes() {
        let NodeKind::Branch { cond } = &cfg.node(b).kind else {
            unreachable!()
        };
        let var_exprs = &envs[b.index()];
        let mut vals = Vec::with_capacity(sample_n);
        let mut any_unknown = false;
        let mut any_irregular = false;
        for r in 0..sample_n {
            let env = RankEnv {
                rank: r as i64,
                nprocs: sample_n as i64,
                params: &params,
                var_exprs,
            };
            match rank_eval(cond, &env) {
                RankVal::Known(v) => vals.push(v != 0),
                RankVal::Unknown => any_unknown = true,
                RankVal::Irregular => any_irregular = true,
            }
        }
        let class = if any_irregular {
            BranchClass::Irregular
        } else if any_unknown {
            BranchClass::Unresolved
        } else if vals.windows(2).all(|w| w[0] == w[1]) {
            BranchClass::Uniform
        } else {
            BranchClass::IdDependent
        };
        classes.insert(b, class);
    }
    IdDepInfo {
        envs,
        classes,
        params,
    }
}

fn transfer(cfg: &Cfg, node: NodeId, mut env: HashMap<String, Expr>) -> HashMap<String, Expr> {
    if let NodeKind::Assign { var, value } = &cfg.node(node).kind {
        // Substitute known bindings into the RHS; keep only if closed.
        let substituted = value.substitute(&|name| env.get(name).cloned());
        if is_closed(&substituted) {
            env.insert(var.clone(), substituted);
        } else {
            env.remove(var);
        }
    }
    env
}

fn meet(a: &HashMap<String, Expr>, b: &HashMap<String, Expr>) -> HashMap<String, Expr> {
    a.iter()
        .filter(|(k, v)| b.get(*k) == Some(v))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_cfg::build_cfg;
    use acfc_mpsl::parse;

    fn info_for(src: &str) -> (acfc_cfg::Cfg, IdDepInfo) {
        let p = parse(src).unwrap();
        let (cfg, lowered) = build_cfg(&p);
        let info = analyze_iddep(&cfg, &lowered);
        (cfg, info)
    }

    #[test]
    fn direct_rank_branch_is_id_dependent() {
        let (cfg, info) = info_for("program t; if rank % 2 == 0 { compute 1; }");
        let b = cfg.branch_nodes()[0];
        assert_eq!(info.branch_class(b), Some(BranchClass::IdDependent));
        assert!(info.is_id_dependent(b));
    }

    #[test]
    fn constant_branch_is_uniform() {
        let (cfg, info) = info_for("program t; param k = 3; if k > 1 { compute 1; }");
        let b = cfg.branch_nodes()[0];
        assert_eq!(info.branch_class(b), Some(BranchClass::Uniform));
    }

    #[test]
    fn loop_counter_branch_is_unresolved() {
        let (cfg, info) = info_for("program t; var i; while i < 3 { i := i + 1; }");
        let b = cfg.branch_nodes()[0];
        assert_eq!(info.branch_class(b), Some(BranchClass::Unresolved));
        assert!(!info.is_id_dependent(b));
    }

    #[test]
    fn input_branch_is_irregular() {
        let (cfg, info) = info_for("program t; if input(0) > 0 { compute 1; }");
        let b = cfg.branch_nodes()[0];
        assert_eq!(info.branch_class(b), Some(BranchClass::Irregular));
    }

    #[test]
    fn propagated_rank_var_is_id_dependent() {
        let (cfg, info) = info_for("program t; var me; me := rank % 2; if me == 0 { compute 1; }");
        let b = cfg.branch_nodes()[0];
        assert_eq!(info.branch_class(b), Some(BranchClass::IdDependent));
        // The environment at the branch resolves `me`.
        assert!(info.env_at(b).contains_key("me"));
    }

    #[test]
    fn reassigned_var_in_loop_is_dropped() {
        let (cfg, info) = info_for(
            "program t; var i; i := rank; while i < 9 { i := i + 1; } if i == 0 { compute 1; }",
        );
        // After the loop, `i`'s value is iteration-dependent: must-env
        // drops it, so the final branch is Unresolved, not IdDependent.
        let branches = cfg.branch_nodes();
        let last = *branches.last().unwrap();
        assert_eq!(info.branch_class(last), Some(BranchClass::Unresolved));
    }

    #[test]
    fn join_keeps_only_agreeing_bindings() {
        let (cfg, info) = info_for(
            "program t; var a, b;
             a := 7;
             if rank == 0 { b := 1; } else { b := 2; }
             if a == 7 { compute 1; }",
        );
        // `a` survives the join (same binding on both arms); `b` does not.
        let branches = cfg.branch_nodes();
        let last = *branches.last().unwrap();
        let env = info.env_at(last);
        assert_eq!(env.get("a"), Some(&Expr::Int(7)));
        assert!(!env.contains_key("b"));
        assert_eq!(info.branch_class(last), Some(BranchClass::Uniform));
    }

    #[test]
    fn fig2_jacobi_branch_classified() {
        let p = acfc_mpsl::programs::jacobi_odd_even(3);
        let (cfg, lowered) = build_cfg(&p);
        let info = analyze_iddep(&cfg, &lowered);
        let classes: Vec<BranchClass> = cfg
            .branch_nodes()
            .iter()
            .map(|&b| info.branch_class(b).unwrap())
            .collect();
        // One loop (Unresolved) and the odd/even branch (IdDependent).
        assert!(classes.contains(&BranchClass::Unresolved));
        assert!(classes.contains(&BranchClass::IdDependent));
    }
}
