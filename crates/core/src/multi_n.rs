//! Analysis across a range of process counts.
//!
//! The static phases are instantiated at a concrete `n` (rank sets are
//! finite); the paper's guarantee, however, is meant for whatever `n`
//! the program is eventually deployed at. This module closes the gap:
//!
//! * [`analyze_for_all_n`] runs the pipeline at a *reference* `n` and
//!   then re-checks Condition 1 on the transformed program at every
//!   other requested `n`, reporting any count at which the placement
//!   would not be safe;
//! * [`condition1_at`] is the bare re-check for one `n`.
//!
//! In practice communication patterns are arithmetic in `rank` and
//! `nprocs` (neighbours, rings, hierarchies), so a placement safe at
//! one even and one odd `n` is safe everywhere — but the point of this
//! module is that the claim is *checked*, not assumed.

use crate::attr::compute_attrs;
use crate::condition::{check_condition1, LoopPolicy, Violation};
use crate::cuts::index_checkpoints;
use crate::extended::ExtendedCfg;
use crate::iddep::analyze_iddep;
use crate::matching::{match_send_recv, MatchingMode};
use crate::pipeline::{analyze, Analysis, AnalysisConfig, AnalysisError};
use acfc_mpsl::Program;
use acfc_util::parallel::{configured_threads, par_map_threads_labeled};

/// Condition-1 violations of `program` as written, at `n` processes.
pub fn condition1_at(
    program: &Program,
    n: usize,
    matching: MatchingMode,
    policy: LoopPolicy,
) -> Vec<Violation> {
    let (cfg, lowered) = acfc_cfg::build_cfg(program);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, n, &iddep);
    let m = match_send_recv(&cfg, &attrs, &iddep, matching);
    let index = index_checkpoints(&cfg, &lowered);
    let g = ExtendedCfg::build(cfg, &m);
    check_condition1(&g, &index, policy)
}

/// The outcome of a multi-`n` analysis.
#[derive(Debug)]
pub struct MultiNAnalysis {
    /// The pipeline result at the reference `n`.
    pub analysis: Analysis,
    /// Process counts at which the transformed program was re-checked
    /// and found safe.
    pub verified_at: Vec<usize>,
    /// Process counts at which Condition 1 still fails on the
    /// transformed program (non-empty = the placement is `n`-sensitive
    /// and must be re-analysed per deployment size).
    pub unsafe_at: Vec<(usize, usize)>,
}

impl MultiNAnalysis {
    /// `true` when the placement is safe at every requested `n`.
    pub fn safe_everywhere(&self) -> bool {
        self.unsafe_at.is_empty()
    }
}

/// Runs the pipeline at `reference_n` and re-checks the result at each
/// count in `all_n`. The per-`n` re-checks are independent and run on
/// [`configured_threads`] worker threads (`ACFC_THREADS` overrides);
/// results are collected in `all_n` order, so the report is identical
/// to the sequential one at any thread count.
///
/// # Errors
///
/// Propagates pipeline errors from the reference analysis.
pub fn analyze_for_all_n(
    program: &Program,
    reference_n: usize,
    all_n: &[usize],
    config: &AnalysisConfig,
) -> Result<MultiNAnalysis, AnalysisError> {
    analyze_for_all_n_threads(program, reference_n, all_n, config, configured_threads())
}

/// [`analyze_for_all_n`] with an explicit worker-thread count.
///
/// # Errors
///
/// Propagates pipeline errors from the reference analysis.
pub fn analyze_for_all_n_threads(
    program: &Program,
    reference_n: usize,
    all_n: &[usize],
    config: &AnalysisConfig,
    threads: usize,
) -> Result<MultiNAnalysis, AnalysisError> {
    let config = AnalysisConfig {
        nprocs: reference_n,
        ..config.clone()
    };
    let analysis = analyze(program, &config)?;
    let per_n = par_map_threads_labeled(all_n, threads, Some("multi_n"), |_, &n| {
        (
            n,
            condition1_at(&analysis.program, n, config.matching, config.policy).len(),
        )
    });
    let mut verified_at = Vec::new();
    let mut unsafe_at = Vec::new();
    for (n, violations) in per_n {
        if violations == 0 {
            verified_at.push(n);
        } else {
            unsafe_at.push((n, violations));
        }
    }
    Ok(MultiNAnalysis {
        analysis,
        verified_at,
        unsafe_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::{parse, programs};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::for_nprocs(8)
    }

    #[test]
    fn stock_placements_are_safe_across_many_n() {
        let all_n: Vec<usize> = vec![2, 3, 4, 5, 6, 7, 8, 12, 16, 32, 64];
        for p in programs::all_stock() {
            let r = analyze_for_all_n(&p, 8, &all_n, &cfg())
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(
                r.safe_everywhere(),
                "{}: unsafe at {:?}",
                p.name,
                r.unsafe_at
            );
            assert_eq!(r.verified_at, all_n);
        }
    }

    #[test]
    fn condition1_at_flags_the_unsafe_original() {
        let p = programs::jacobi_odd_even(3);
        for n in [2usize, 4, 16] {
            assert!(
                !condition1_at(&p, n, MatchingMode::FifoOrdered, LoopPolicy::Optimized).is_empty(),
                "n={n}"
            );
        }
    }

    #[test]
    fn rank_literal_programs_can_be_n_sensitive() {
        // A program whose pattern names literal ranks: at n = 2 the
        // send targets rank 2, which does not exist, so the analysis at
        // n = 2 sees no matching and thus no violation — the module
        // reports per-n results rather than assuming transfer.
        let p = parse(
            "program literal;
             if rank == 0 { checkpoint; send to 2 size 64; }
             if rank == 2 { recv from 0; checkpoint; }",
        )
        .unwrap();
        let at4 = condition1_at(&p, 4, MatchingMode::FifoOrdered, LoopPolicy::Optimized);
        assert!(!at4.is_empty(), "at n=4 the orphan pattern is visible");
        let at2 = condition1_at(&p, 2, MatchingMode::FifoOrdered, LoopPolicy::Optimized);
        assert!(at2.is_empty(), "at n=2 rank 2 never runs");
    }

    #[test]
    fn parallel_report_is_identical_to_sequential() {
        let all_n: Vec<usize> = vec![2, 3, 4, 5, 6, 8, 12, 16];
        let p = programs::jacobi_odd_even(3);
        let seq = analyze_for_all_n_threads(&p, 8, &all_n, &cfg(), 1).unwrap();
        for threads in [2, 4, 8] {
            let par = analyze_for_all_n_threads(&p, 8, &all_n, &cfg(), threads).unwrap();
            assert_eq!(par.verified_at, seq.verified_at, "threads={threads}");
            assert_eq!(par.unsafe_at, seq.unsafe_at, "threads={threads}");
        }
    }

    #[test]
    fn multi_n_report_structure() {
        let r = analyze_for_all_n(&programs::pipeline_skewed(3), 8, &[2, 4, 6], &cfg()).unwrap();
        assert!(r.safe_everywhere());
        assert!(!r.analysis.moves.is_empty());
        assert_eq!(r.verified_at.len(), 3);
    }
}
