//! Human-readable explanations of analysis results.
//!
//! Condition-1 violations are paths in the extended CFG; raw node ids
//! are opaque to users. This module renders violations — and the
//! straight-cut structure — with source-level labels, in the style of
//! the paper's worked examples ("the path
//! ⟨C₁ᴮ, Send, Recv, while, C₁ᴬ⟩ …").

use crate::condition::Violation;
use crate::cuts::CheckpointIndex;
use crate::extended::ExtendedCfg;
use acfc_cfg::{node_label, NodeId};
use std::fmt::Write;

/// Renders one violation with its witness path in source-level terms.
pub fn explain_violation(g: &ExtendedCfg, v: &Violation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "straight cut S_{} is not guaranteed to be a recovery line:",
        v.index
    );
    let _ = writeln!(
        out,
        "  checkpoint {} can happen-before checkpoint {}{}",
        node_label(&g.cfg, v.from),
        node_label(&g.cfg, v.to),
        if v.only_via_back_edge {
            " (across loop iterations)"
        } else {
            ""
        }
    );
    let _ = write!(out, "  via the path ⟨");
    for (i, &n) in v.witness.iter().enumerate() {
        if i > 0 {
            let prev = v.witness[i - 1];
            let is_msg = g
                .message_edges
                .iter()
                .any(|e| e.send == prev && e.recv == n);
            let _ = write!(out, "{}", if is_msg { " ⇒ " } else { ", " });
        }
        let _ = write!(out, "{}", node_label(&g.cfg, n));
    }
    let _ = writeln!(out, "⟩");
    let _ = writeln!(
        out,
        "  (⇒ marks a message edge; Algorithm 3.2 will move the later checkpoint back)"
    );
    out
}

/// Renders every violation.
pub fn explain_violations(g: &ExtendedCfg, violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "Condition 1 holds: every straight cut of checkpoints is a \
                recovery line in any further execution.\n"
            .to_string();
    }
    violations.iter().map(|v| explain_violation(g, v)).collect()
}

/// Renders the straight-cut structure: which checkpoint nodes form each
/// `S_i`.
pub fn explain_cuts(g: &ExtendedCfg, index: &CheckpointIndex) -> String {
    let mut out = String::new();
    let max = index.max_index();
    for i in 1..=max {
        let members: Vec<NodeId> = index.straight_cut(i);
        let _ = write!(out, "S_{i} = {{");
        for (k, n) in members.iter().enumerate() {
            if k > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(out, "{}", node_label(&g.cfg, *n));
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::compute_attrs;
    use crate::condition::{check_condition1, LoopPolicy};
    use crate::cuts::index_checkpoints;
    use crate::iddep::analyze_iddep;
    use crate::matching::{match_send_recv, MatchingMode};
    use acfc_cfg::build_cfg;
    use acfc_mpsl::programs;

    fn setup(p: &acfc_mpsl::Program) -> (ExtendedCfg, CheckpointIndex, Vec<Violation>) {
        let (cfg, lowered) = build_cfg(p);
        let iddep = analyze_iddep(&cfg, &lowered);
        let attrs = compute_attrs(&cfg, 8, &iddep);
        let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::FifoOrdered);
        let idx = index_checkpoints(&cfg, &lowered);
        let g = ExtendedCfg::build(cfg, &m);
        let v = check_condition1(&g, &idx, LoopPolicy::Optimized);
        (g, idx, v)
    }

    #[test]
    fn violation_explanation_reads_like_the_paper() {
        let (g, _, v) = setup(&programs::fig5());
        assert_eq!(v.len(), 1);
        let text = explain_violation(&g, &v[0]);
        assert!(text.contains("S_1"));
        assert!(text.contains("chkpt"));
        assert!(text.contains('⇒'), "message edge marked: {text}");
        assert!(text.contains("send to"));
        assert!(text.contains("recv from"));
    }

    #[test]
    fn clean_program_reports_condition_holds() {
        let (g, _, v) = setup(&programs::jacobi(3));
        let text = explain_violations(&g, &v);
        assert!(text.contains("Condition 1 holds"));
    }

    #[test]
    fn cut_structure_lists_members() {
        let (g, idx, _) = setup(&programs::jacobi_odd_even(3));
        let text = explain_cuts(&g, &idx);
        assert!(text.starts_with("S_1 = {"));
        // Two same-index checkpoints.
        assert_eq!(text.matches("chkpt").count(), 2);
    }

    #[test]
    fn back_edge_violations_are_called_out() {
        let (g, _, v) = setup(&programs::fig6(3));
        assert_eq!(v.len(), 1);
        let text = explain_violation(&g, &v[0]);
        assert!(text.contains("across loop iterations"), "{text}");
    }
}
