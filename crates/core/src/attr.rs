//! Rank attributes.
//!
//! §3.2: *every control path from a branch node is characterised by an
//! attribute driven from the condition expression* — e.g. after
//! `if rank % 2 == 0`, the true path has the attribute "even ranks".
//! We represent attributes concretely as **rank sets**: for an analysis
//! instantiated at `n` processes, the attribute of a node is the set of
//! ranks that can possibly execute it. Attributes are computed by a
//! forward may-analysis; branch edges constrain the set whenever the
//! branch condition is rank-determined.

use crate::iddep::IdDepInfo;
use acfc_cfg::{Cfg, EdgeLabel, NodeId, NodeKind};
use acfc_mpsl::{rank_eval, RankEnv, RankVal};
use std::collections::HashMap;
use std::fmt;

/// Maximum number of processes an analysis instance supports (rank sets
/// are a `u128` bitmask).
pub const MAX_ANALYSIS_RANKS: usize = 128;

/// A set of ranks `⊆ {0, …, n−1}`, `n ≤ 128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RankSet {
    bits: u128,
    n: u32,
}

impl RankSet {
    /// The empty set for `n` ranks.
    pub fn empty(n: usize) -> RankSet {
        assert!(n <= MAX_ANALYSIS_RANKS, "analysis supports n ≤ 128");
        RankSet {
            bits: 0,
            n: n as u32,
        }
    }

    /// The full set `{0, …, n−1}`.
    pub fn full(n: usize) -> RankSet {
        assert!(n <= MAX_ANALYSIS_RANKS, "analysis supports n ≤ 128");
        let bits = if n == 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        RankSet { bits, n: n as u32 }
    }

    /// A singleton set.
    pub fn singleton(n: usize, r: usize) -> RankSet {
        let mut s = RankSet::empty(n);
        s.insert(r);
        s
    }

    /// The universe size `n`.
    pub fn universe(&self) -> usize {
        self.n as usize
    }

    /// Inserts a rank.
    ///
    /// # Panics
    ///
    /// Panics if `r ≥ n`.
    pub fn insert(&mut self, r: usize) {
        assert!((r as u32) < self.n, "rank out of range");
        self.bits |= 1u128 << r;
    }

    /// Membership test.
    pub fn contains(&self, r: usize) -> bool {
        (r as u32) < self.n && self.bits & (1u128 << r) != 0
    }

    /// Set union.
    pub fn union(&self, other: &RankSet) -> RankSet {
        assert_eq!(self.n, other.n, "universe mismatch");
        RankSet {
            bits: self.bits | other.bits,
            n: self.n,
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &RankSet) -> RankSet {
        assert_eq!(self.n, other.n, "universe mismatch");
        RankSet {
            bits: self.bits & other.bits,
            n: self.n,
        }
    }

    /// `true` if no rank is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of ranks in the set.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over member ranks, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let n = self.n as usize;
        let bits = self.bits;
        (0..n).filter(move |r| bits & (1u128 << r) != 0)
    }
}

impl fmt::Display for RankSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

/// Per-node rank attributes of a CFG, at a concrete `n`.
#[derive(Debug, Clone)]
pub struct NodeAttrs {
    /// `attrs[node.index()]` = ranks that can execute the node.
    attrs: Vec<RankSet>,
    n: usize,
}

impl NodeAttrs {
    /// The attribute of `node`.
    pub fn of(&self, node: NodeId) -> RankSet {
        self.attrs[node.index()]
    }

    /// The analysis `n`.
    pub fn nprocs(&self) -> usize {
        self.n
    }
}

/// Computes node attributes for `n` processes.
///
/// Entry has the full set. An edge out of a branch node keeps rank `r`
/// only if the condition is rank-determined at `r` and its truth value
/// matches the edge label; conditions the analysis cannot resolve
/// (loop counters, input data) impose no constraint. Join is set union;
/// loops iterate to a fixpoint (the lattice is finite and the transfer
/// monotone, so this terminates).
pub fn compute_attrs(cfg: &Cfg, n: usize, iddep: &IdDepInfo) -> NodeAttrs {
    let mut attrs = vec![RankSet::empty(n); cfg.len()];
    attrs[cfg.entry().index()] = RankSet::full(n);
    let params: HashMap<String, i64> = iddep.params.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for a in cfg.node_ids() {
            if attrs[a.index()].is_empty() {
                continue;
            }
            for &(b, label) in cfg.succs(a) {
                let contribution = constrain_edge(cfg, iddep, &params, a, label, attrs[a.index()]);
                let merged = attrs[b.index()].union(&contribution);
                if merged != attrs[b.index()] {
                    attrs[b.index()] = merged;
                    changed = true;
                }
            }
        }
    }
    NodeAttrs { attrs, n }
}

fn constrain_edge(
    cfg: &Cfg,
    iddep: &IdDepInfo,
    params: &HashMap<String, i64>,
    a: NodeId,
    label: EdgeLabel,
    incoming: RankSet,
) -> RankSet {
    let NodeKind::Branch { cond } = &cfg.node(a).kind else {
        return incoming;
    };
    let want_true = match label {
        EdgeLabel::True => true,
        EdgeLabel::False => false,
        EdgeLabel::Seq => return incoming,
    };
    let n = incoming.universe();
    let var_exprs = iddep.env_at(a);
    let mut out = RankSet::empty(n);
    for r in incoming.iter() {
        let env = RankEnv {
            rank: r as i64,
            nprocs: n as i64,
            params,
            var_exprs,
        };
        match rank_eval(cond, &env) {
            RankVal::Known(v) => {
                if (v != 0) == want_true {
                    out.insert(r);
                }
            }
            // Unresolvable: both outcomes possible for this rank.
            RankVal::Unknown | RankVal::Irregular => out.insert(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iddep::analyze_iddep;
    use acfc_cfg::build_cfg;
    use acfc_mpsl::parse;

    fn attrs_for(src: &str, n: usize) -> (acfc_cfg::Cfg, NodeAttrs) {
        let p = parse(src).unwrap();
        let (cfg, lowered) = build_cfg(&p);
        let iddep = analyze_iddep(&cfg, &lowered);
        let a = compute_attrs(&cfg, n, &iddep);
        (cfg, a)
    }

    #[test]
    fn rankset_basics() {
        let mut s = RankSet::empty(8);
        assert!(s.is_empty());
        s.insert(3);
        s.insert(5);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(s.to_string(), "{3,5}");
        let full = RankSet::full(8);
        assert_eq!(full.len(), 8);
        assert_eq!(s.union(&full), full);
        assert_eq!(s.intersect(&full), s);
        assert_eq!(RankSet::singleton(8, 2).len(), 1);
    }

    #[test]
    fn full_at_128_does_not_overflow() {
        let s = RankSet::full(128);
        assert_eq!(s.len(), 128);
        assert!(s.contains(127));
    }

    #[test]
    #[should_panic(expected = "n ≤ 128")]
    fn oversized_universe_panics() {
        let _ = RankSet::full(129);
    }

    #[test]
    fn odd_even_branch_splits_ranks() {
        let (cfg, attrs) = attrs_for(
            "program t;
             if rank % 2 == 0 { send to rank + 1; } else { recv from rank - 1; }",
            6,
        );
        let send = cfg.send_nodes()[0];
        let recv = cfg.recv_nodes()[0];
        assert_eq!(attrs.of(send).iter().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(attrs.of(recv).iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(attrs.of(cfg.entry()).len(), 6);
        assert_eq!(attrs.of(cfg.exit()).len(), 6);
    }

    #[test]
    fn nested_id_branches_intersect() {
        let (cfg, attrs) = attrs_for(
            "program t;
             if rank > 1 {
               if rank < 4 { checkpoint; }
             }",
            6,
        );
        let c = cfg.checkpoint_nodes()[0];
        assert_eq!(attrs.of(c).iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn rank_independent_branch_keeps_full_set() {
        let (cfg, attrs) = attrs_for(
            "program t; var x;
             if x > 0 { send to 0; } else { recv from any; }",
            4,
        );
        // `x` is unknown: both arms possible for every rank.
        let send = cfg.send_nodes()[0];
        let recv = cfg.recv_nodes()[0];
        assert_eq!(attrs.of(send).len(), 4);
        assert_eq!(attrs.of(recv).len(), 4);
    }

    #[test]
    fn loop_body_gets_full_set_via_fixpoint() {
        let (cfg, attrs) = attrs_for(
            "program t; var i;
             while i < 3 { checkpoint; i := i + 1; }",
            4,
        );
        let c = cfg.checkpoint_nodes()[0];
        assert_eq!(attrs.of(c).len(), 4);
    }

    #[test]
    fn propagated_variable_constraint_applies() {
        // `me := rank % 2` is resolvable, so `if me == 0` splits ranks.
        let (cfg, attrs) = attrs_for(
            "program t; var me;
             me := rank % 2;
             if me == 0 { send to rank + 1; }",
            4,
        );
        let send = cfg.send_nodes()[0];
        assert_eq!(attrs.of(send).iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn irregular_condition_constrains_nothing() {
        let (cfg, attrs) = attrs_for(
            "program t;
             if input(0) % 2 == 0 { send to 0; }",
            4,
        );
        let send = cfg.send_nodes()[0];
        assert_eq!(attrs.of(send).len(), 4);
    }

    #[test]
    fn unreachable_branch_prunes_ranks() {
        let (cfg, attrs) = attrs_for(
            "program t;
             if rank == 0 {
               if rank == 1 { checkpoint; }
             }",
            4,
        );
        let c = cfg.checkpoint_nodes()[0];
        assert!(attrs.of(c).is_empty(), "{}", attrs.of(c));
    }
}
