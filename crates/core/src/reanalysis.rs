//! Incremental re-analysis across Algorithm 3.2 iterations.
//!
//! Phase III is a fixpoint loop: check Condition 1, relocate one
//! checkpoint, rebuild, repeat. The expensive per-iteration work —
//! ID-dependence dataflow, rank attributes, and Algorithm 3.1 send/recv
//! matching — depends only on the program's *communication structure*,
//! and a checkpoint relocation cannot change that structure: checkpoint
//! statements contain no expressions, no sends, and no receives, so
//! moving or removing one leaves every send/recv statement, its
//! destination/source expressions, and their relative program order
//! untouched. Only node **identities** change when the CFG is rebuilt.
//!
//! [`ReanalysisCache`] exploits this: it records the Phase II matching
//! once, with each edge endpoint expressed as an *ordinal* (the k-th
//! send node / k-th recv node in CFG creation order, which follows the
//! program's pre-order traversal), and replays it against every rebuilt
//! CFG by mapping ordinals back to the new node ids. The invalidation
//! rule is conservative: if the rebuilt CFG's send or receive node
//! counts differ from the cached signature — something other than a
//! checkpoint edit happened — the cache refuses and the caller recomputes
//! from scratch.

use crate::matching::{match_send_recv, Matching, MatchingMode, MessageEdge};
use crate::{analyze_iddep, compute_attrs};
use acfc_cfg::{Cfg, NodeId};
use acfc_mpsl::Program;

/// A replayable Phase II result, keyed on the communication-structure
/// signature of the CFG it was computed from.
#[derive(Debug, Clone)]
pub struct ReanalysisCache {
    send_count: usize,
    recv_count: usize,
    /// `(send_ordinal, recv_ordinal)` per message edge.
    edges: Vec<(usize, usize)>,
    /// Witnesses of the original matching, parallel to `edges`.
    witnesses: Vec<crate::matching::MatchWitness>,
    /// Ordinals of receives that had no matching send.
    unmatched_recvs: Vec<usize>,
}

impl ReanalysisCache {
    /// Runs Phase II in full (ID-dependence, attributes, matching) and
    /// returns the matching together with a cache that can replay it on
    /// later CFGs of checkpoint-edited variants of the same program.
    pub fn compute(
        cfg: &Cfg,
        lowered: &Program,
        nprocs: usize,
        mode: MatchingMode,
    ) -> (ReanalysisCache, Matching) {
        let iddep = analyze_iddep(cfg, lowered);
        let attrs = compute_attrs(cfg, nprocs, &iddep);
        let matching = match_send_recv(cfg, &attrs, &iddep, mode);
        let cache = ReanalysisCache::from_matching(cfg, &matching);
        (cache, matching)
    }

    /// Encodes an existing matching as ordinals against its own CFG.
    pub fn from_matching(cfg: &Cfg, matching: &Matching) -> ReanalysisCache {
        let sends = cfg.send_nodes();
        let recvs = cfg.recv_nodes();
        let send_ord = ordinal_map(&sends);
        let recv_ord = ordinal_map(&recvs);
        let edges = matching
            .edges
            .iter()
            .map(|e| (send_ord(e.send), recv_ord(e.recv)))
            .collect();
        let unmatched_recvs = matching
            .unmatched_recvs
            .iter()
            .map(|&r| recv_ord(r))
            .collect();
        ReanalysisCache {
            send_count: sends.len(),
            recv_count: recvs.len(),
            edges,
            witnesses: matching.witnesses.clone(),
            unmatched_recvs,
        }
    }

    /// Replays the cached matching against a rebuilt CFG, remapping
    /// every edge endpoint by ordinal. Returns `None` when the CFG's
    /// communication signature no longer matches the cache (the caller
    /// must recompute — and should refresh the cache).
    pub fn matching_for(&self, cfg: &Cfg) -> Option<Matching> {
        let sends = cfg.send_nodes();
        let recvs = cfg.recv_nodes();
        if sends.len() != self.send_count || recvs.len() != self.recv_count {
            return None;
        }
        let edges: Vec<MessageEdge> = self
            .edges
            .iter()
            .map(|&(s, r)| MessageEdge {
                send: sends[s],
                recv: recvs[r],
            })
            .collect();
        let witnesses = self
            .witnesses
            .iter()
            .zip(&edges)
            .map(|(w, &edge)| crate::matching::MatchWitness { edge, ..w.clone() })
            .collect();
        Some(Matching {
            edges,
            witnesses,
            unmatched_recvs: self.unmatched_recvs.iter().map(|&r| recvs[r]).collect(),
        })
    }
}

/// NodeId → position within a creation-ordered node list.
fn ordinal_map(nodes: &[NodeId]) -> impl Fn(NodeId) -> usize + '_ {
    move |id| {
        nodes
            .iter()
            .position(|&n| n == id)
            .expect("matching references a node absent from its own CFG")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_cfg::{build_cfg, build_cfg_prelowered};
    use acfc_mpsl::{parse, programs, Stmt, StmtKind};

    fn full_matching(cfg: &Cfg, lowered: &Program, n: usize) -> Matching {
        let iddep = analyze_iddep(cfg, lowered);
        let attrs = compute_attrs(cfg, n, &iddep);
        match_send_recv(cfg, &attrs, &iddep, MatchingMode::FifoOrdered)
    }

    #[test]
    fn replay_on_same_cfg_is_identity() {
        let p = programs::jacobi_odd_even(3);
        let (cfg, lowered) = build_cfg(&p);
        let (cache, matching) =
            ReanalysisCache::compute(&cfg, &lowered, 4, MatchingMode::FifoOrdered);
        let replayed = cache.matching_for(&cfg).expect("signature matches");
        assert_eq!(replayed.edges, matching.edges);
        assert_eq!(replayed.unmatched_recvs, matching.unmatched_recvs);
        assert_eq!(replayed.witnesses.len(), matching.witnesses.len());
    }

    #[test]
    fn replay_after_checkpoint_move_equals_full_recompute() {
        let p = programs::fig5();
        let (cfg, mut lowered) = build_cfg(&p);
        let (cache, _) = ReanalysisCache::compute(&cfg, &lowered, 4, MatchingMode::FifoOrdered);
        // Simulate an Algorithm 3.2 edit: pull the first checkpoint
        // statement out of wherever it is and put it at program start.
        let ckpt_ids = lowered.checkpoint_ids();
        let moved =
            crate::phase3::remove_stmt(&mut lowered.body, ckpt_ids[0]).expect("checkpoint exists");
        lowered.body.insert(0, moved);
        lowered.renumber();
        let cfg2 = build_cfg_prelowered(&lowered);
        let replayed = cache.matching_for(&cfg2).expect("comm structure unchanged");
        let recomputed = full_matching(&cfg2, &lowered, 4);
        assert_eq!(replayed.edges, recomputed.edges);
        assert_eq!(replayed.unmatched_recvs, recomputed.unmatched_recvs);
    }

    #[test]
    fn replay_after_checkpoint_removal_still_valid() {
        let p = programs::jacobi_odd_even(2);
        let (cfg, mut lowered) = build_cfg(&p);
        let (cache, _) = ReanalysisCache::compute(&cfg, &lowered, 4, MatchingMode::FifoOrdered);
        let ckpt_ids = lowered.checkpoint_ids();
        let _ = crate::phase3::remove_stmt(&mut lowered.body, ckpt_ids[0]);
        lowered.renumber();
        let cfg2 = build_cfg_prelowered(&lowered);
        let replayed = cache.matching_for(&cfg2).expect("comm structure unchanged");
        let recomputed = full_matching(&cfg2, &lowered, 4);
        assert_eq!(replayed.edges, recomputed.edges);
    }

    #[test]
    fn signature_mismatch_is_refused() {
        let p = parse("program t; if rank == 0 { send to 1; } else { recv from 0; }").unwrap();
        let (cfg, lowered) = build_cfg(&p);
        let (cache, _) = ReanalysisCache::compute(&cfg, &lowered, 2, MatchingMode::FifoOrdered);
        // Add a second send: the comm signature changes.
        let mut grown = lowered.clone();
        grown.body.push(Stmt::new(StmtKind::Send {
            dest: acfc_mpsl::Expr::Int(1),
            size_bits: acfc_mpsl::Expr::Int(8),
        }));
        grown.renumber();
        let cfg2 = build_cfg_prelowered(&grown);
        assert!(cache.matching_for(&cfg2).is_none());
    }
}
