//! # ACFC core — the paper's offline analysis
//!
//! This crate is the reproduction of the central contribution of
//! *Agbaria & Sanders, "Application-Driven Coordination-Free Distributed
//! Checkpointing" (ICDCS 2005)*: a three-phase, entirely offline
//! analysis of an SPMD message-passing program that places (and, where
//! necessary, relocates) its `checkpoint` statements so that **every
//! straight cut of checkpoints is a recovery line in any further
//! execution** — with zero runtime coordination, zero control messages,
//! zero forced checkpoints, and zero rollback propagation.
//!
//! * [`phase1`] — static checkpoint insertion at (approximately)
//!   optimal intervals and per-path count equalisation (§3.1);
//! * [`iddep`] / [`attr`] — the ID-dependence dataflow and per-node
//!   rank attributes (§3.2);
//! * [`matching`] — Algorithm 3.1: matching every receive with its
//!   non-contradicting sends;
//! * [`extended`] — the extended CFG `Ĝ` with message edges (Figure 4);
//! * [`cuts`] — enumeration of the static straight cuts `S_i`;
//! * [`condition`] — Condition 1 / Theorem 3.2 checking, with the
//!   paper's loop optimization as a selectable policy;
//! * [`phase3`] — Algorithm 3.2: relocating checkpoints to establish
//!   Condition 1;
//! * [`pipeline`] — [`analyze`], the end-to-end entry point.
//!
//! ```
//! use acfc_core::{analyze, AnalysisConfig};
//!
//! // The Figure 1 Jacobi is safe as written...
//! let safe = analyze(&acfc_mpsl::programs::jacobi(10),
//!                    &AnalysisConfig::for_nprocs(8)).unwrap();
//! assert!(safe.was_already_safe());
//!
//! // ...the Figure 2 odd/even variant is not, and gets repaired.
//! let fixed = analyze(&acfc_mpsl::programs::jacobi_odd_even(10),
//!                     &AnalysisConfig::for_nprocs(8)).unwrap();
//! assert!(!fixed.moves.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attr;
pub mod condition;
pub mod cuts;
pub mod explain;
pub mod extended;
pub mod iddep;
pub mod matching;
pub mod multi_n;
pub mod phase1;
pub mod phase3;
pub mod pipeline;
pub mod reanalysis;

pub use attr::{compute_attrs, NodeAttrs, RankSet};
pub use condition::{check_condition1, condition1_holds, LoopPolicy, Violation};
pub use cuts::{index_checkpoints, CheckpointIndex, IndexRange};
pub use explain::{explain_cuts, explain_violation, explain_violations};
pub use extended::ExtendedCfg;
pub use iddep::{analyze_iddep, analyze_iddep_at, BranchClass, IdDepInfo};
pub use matching::{match_send_recv, Matching, MatchingMode, MessageEdge};
pub use multi_n::{analyze_for_all_n, analyze_for_all_n_threads, condition1_at, MultiNAnalysis};
pub use phase1::{
    equalize_checkpoints, estimate_program_cost, insert_checkpoints, optimal_interval,
    rebalance_checkpoints, InsertionConfig, InsertionReport,
};
pub use phase3::{ensure_recovery_lines, MoveRecord, Phase3Config, Phase3Error, Phase3Result};
pub use pipeline::{analyze, Analysis, AnalysisConfig, AnalysisError};
pub use reanalysis::ReanalysisCache;
