//! Phase III, part 2 — repairing violations (Algorithm 3.2).
//!
//! When Condition 1 fails for a pair `C_i^A →γ C_i^B`, Algorithm 3.2
//! *moves `C_i^B` back*: walking the dominator chain of `C_i^B` from the
//! entry node, it finds the edge `⟨a, b⟩` with `C_i^A ⇝ b` but
//! `C_i^A ⇝̸ a` (such an `a` always exists — the entry node has no
//! incoming edges) and relocates the checkpoint to between `a` and `b`.
//!
//! Reachability along a dominator chain is monotone (each dominator can
//! reach the next through the dominated region), so the unreachable
//! chain nodes form a prefix and `b` is simply the first reachable chain
//! node. Under [`LoopPolicy::Optimized`], forward reachability (no CFG
//! backward edges) is used for forward violations so that checkpoints
//! stay inside loops; pure back-edge violations (the Figure 6 case) use
//! full reachability and hoist the checkpoint out of the loop.
//!
//! The relocation is performed on the **program AST** (insert a
//! checkpoint statement just before the statement of `b`, remove the old
//! one) and the whole analysis is rebuilt; this keeps the program, the
//! CFG, and the extended CFG in sync, at the cost of re-running the
//! cheap static phases each iteration. If an insertion fails to remove
//! the violation (the path re-enters through a non-dominator
//! predecessor), the insertion point escalates one dominator earlier;
//! iteration is capped and residual violations are reported as an error
//! rather than silently accepted.

use crate::condition::{check_condition1, LoopPolicy, Violation};
use crate::cuts::index_checkpoints;
use crate::extended::ExtendedCfg;
use crate::matching::{Matching, MatchingMode};
use crate::reanalysis::ReanalysisCache;
use acfc_cfg::{build_cfg_prelowered, dominators, Cfg, NodeId, NodeKind};
use acfc_mpsl::{Block, Program, Stmt, StmtId, StmtKind};
use std::fmt;

/// One relocation performed by Algorithm 3.2.
#[derive(Debug, Clone)]
pub struct MoveRecord {
    /// Label of the moved checkpoint (if any).
    pub label: Option<String>,
    /// Index `i` of the violated straight cut.
    pub index: u32,
    /// Human-readable description of the old and new positions.
    pub description: String,
}

/// Why Phase III gave up.
#[derive(Debug, Clone)]
pub enum Phase3Error {
    /// The iteration cap was reached with violations remaining.
    Unrepairable {
        /// Violations still present.
        residual: usize,
        /// Description of the first residual violation.
        detail: String,
    },
    /// An AST edit failed (internal invariant breach; should not occur
    /// for programs produced by the MPSL parser/builder).
    EditFailed(String),
}

impl fmt::Display for Phase3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase3Error::Unrepairable { residual, detail } => write!(
                f,
                "could not ensure recovery lines: {residual} residual violation(s); first: {detail}"
            ),
            Phase3Error::EditFailed(m) => write!(f, "AST edit failed: {m}"),
        }
    }
}

impl std::error::Error for Phase3Error {}

/// Configuration for Phase III.
#[derive(Debug, Clone)]
pub struct Phase3Config {
    /// Number of processes the analysis is instantiated at.
    pub nprocs: usize,
    /// Send/recv matching mode.
    pub matching: MatchingMode,
    /// Loop policy for Condition 1.
    pub policy: LoopPolicy,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Reuse Phase II (ID-dependence, attributes, send/recv matching)
    /// across Algorithm 3.2 iterations via [`ReanalysisCache`] — sound
    /// because checkpoint relocations cannot change communication
    /// structure. `false` recomputes everything each iteration (the
    /// baseline the bench harness compares against).
    pub incremental: bool,
}

impl Default for Phase3Config {
    fn default() -> Phase3Config {
        Phase3Config {
            nprocs: 8,
            matching: MatchingMode::FifoOrdered,
            policy: LoopPolicy::Optimized,
            max_iterations: 32,
            incremental: true,
        }
    }
}

/// Result of a successful Phase III run.
#[derive(Debug)]
pub struct Phase3Result {
    /// The transformed program (every straight cut now a recovery line
    /// per Condition 1 / Theorem 3.2 under the configured policy).
    pub program: Program,
    /// The final extended CFG.
    pub extended: ExtendedCfg,
    /// The relocations performed (empty when the input already
    /// satisfied Condition 1).
    pub moves: Vec<MoveRecord>,
}

/// Runs Algorithm 3.2 to a fixpoint.
///
/// # Errors
///
/// [`Phase3Error::Unrepairable`] if violations remain after
/// `max_iterations`; [`Phase3Error::EditFailed`] on an internal AST
/// inconsistency.
pub fn ensure_recovery_lines(
    program: &Program,
    config: &Phase3Config,
) -> Result<Phase3Result, Phase3Error> {
    let mut current = program.clone();
    if current.has_collectives() {
        current.lower_collectives();
    }
    let mut moves = Vec::new();
    // Phase II results survive checkpoint relocations (see
    // [`ReanalysisCache`]); the cache carries them across iterations so
    // only the CFG skeleton, the checkpoint index, and the closures are
    // rebuilt per move.
    let mut cache: Option<ReanalysisCache> = None;
    for _ in 0..config.max_iterations {
        let _iter = acfc_obs::span("core/phase3/iteration");
        acfc_obs::count("core/phase3/iterations", 1);
        let cfg = build_cfg_prelowered(&current);
        let matching = phase2_matching(&cfg, &current, config, &mut cache);
        let index = index_checkpoints(&cfg, &current);
        let extended = ExtendedCfg::build(cfg, &matching);
        let violations = check_condition1(&extended, &index, config.policy);
        let Some(v) = pick_violation(&violations) else {
            return Ok(Phase3Result {
                program: current,
                extended,
                moves,
            });
        };
        let record = {
            let _mv = acfc_obs::span("core/phase3/apply_move");
            apply_move(&mut current, &extended, v, config)?
        };
        moves.push(record);
        // A relocation can unbalance per-path checkpoint counts: moving
        // a checkpoint from inside one branch arm to before the branch
        // places it on *every* path, leaving the sibling arm's
        // same-index checkpoint redundant. The §3.1 well-formedness
        // (equal counts on all paths) is an invariant the rest of the
        // analysis depends on — re-establish it by *removing* the
        // redundant sibling checkpoints (padding the lighter arm
        // instead would re-create the violation forever).
        let _rb = acfc_obs::span("core/phase3/rebalance");
        crate::phase1::rebalance_checkpoints(&mut current);
    }
    // One final check to report residuals precisely.
    let cfg = build_cfg_prelowered(&current);
    let matching = phase2_matching(&cfg, &current, config, &mut cache);
    let index = index_checkpoints(&cfg, &current);
    let extended = ExtendedCfg::build(cfg, &matching);
    let violations = check_condition1(&extended, &index, config.policy);
    if violations.is_empty() {
        return Ok(Phase3Result {
            program: current,
            extended,
            moves,
        });
    }
    let first = &violations[0];
    Err(Phase3Error::Unrepairable {
        residual: violations.len(),
        detail: format!("S_{}: path {} -> {}", first.index, first.from, first.to),
    })
}

/// Phase II for one Algorithm 3.2 iteration: replay the cached matching
/// when allowed and still valid, otherwise run it in full and (re)fill
/// the cache.
fn phase2_matching(
    cfg: &Cfg,
    lowered: &Program,
    config: &Phase3Config,
    cache: &mut Option<ReanalysisCache>,
) -> Matching {
    if config.incremental {
        if let Some(m) = cache.as_ref().and_then(|c| c.matching_for(cfg)) {
            acfc_obs::count("core/reanalysis_cache/hits", 1);
            return m;
        }
    }
    acfc_obs::count("core/reanalysis_cache/misses", 1);
    let _span = acfc_obs::span("core/phase2/matching");
    let (fresh, matching) = ReanalysisCache::compute(cfg, lowered, config.nprocs, config.matching);
    *cache = Some(fresh);
    matching
}

/// Deterministic violation choice: smallest index, then node ids.
fn pick_violation(violations: &[Violation]) -> Option<&Violation> {
    violations.iter().min_by_key(|v| (v.index, v.to, v.from))
}

/// Where to insert the relocated checkpoint statement in the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InsertPoint {
    Before(StmtId),
    After(StmtId),
    ProgramStart,
}

fn apply_move(
    program: &mut Program,
    g: &ExtendedCfg,
    v: &Violation,
    config: &Phase3Config,
) -> Result<MoveRecord, Phase3Error> {
    let dom = dominators(&g.cfg);
    let chain = dom.chain(v.to);
    if chain.is_empty() {
        return Err(Phase3Error::EditFailed(format!(
            "checkpoint node {} unreachable",
            v.to
        )));
    }
    // Monotone walk: first chain node reachable from the violation
    // source, under the policy-appropriate reach relation.
    let reaches = |node: NodeId| -> bool {
        if config.policy == LoopPolicy::Optimized && !v.only_via_back_edge {
            g.reaches_forward(v.from, node)
        } else {
            g.reaches(v.from, node)
        }
    };
    let first_reachable = chain
        .iter()
        .position(|&n| reaches(n))
        .unwrap_or(chain.len() - 1);
    // Try the paper's spot first; escalate one dominator earlier if the
    // insertion point degenerates (lands on the checkpoint itself).
    for j in (1..=first_reachable).rev() {
        let b = chain[j];
        if b == v.to {
            continue; // inserting "before itself" is a no-op
        }
        let Some(point) = insert_point_for(g, b) else {
            continue;
        };
        let label = checkpoint_label(program, g, v.to);
        let moved = relocate(program, g, v.to, point)?;
        if moved {
            return Ok(MoveRecord {
                label,
                index: v.index,
                description: format!(
                    "moved checkpoint {} back before {} (violating path from {})",
                    v.to, b, v.from
                ),
            });
        }
    }
    // Fall back: program start (the ENTRY role in the paper's proof).
    let label = checkpoint_label(program, g, v.to);
    let moved = relocate(program, g, v.to, InsertPoint::ProgramStart)?;
    if moved {
        Ok(MoveRecord {
            label,
            index: v.index,
            description: format!("moved checkpoint {} to program start", v.to),
        })
    } else {
        Err(Phase3Error::EditFailed(format!(
            "could not relocate checkpoint {}",
            v.to
        )))
    }
}

fn checkpoint_label(program: &Program, g: &ExtendedCfg, node: NodeId) -> Option<String> {
    let sid = g.cfg.node(node).stmt?;
    match &program.stmt(sid)?.kind {
        StmtKind::Checkpoint { label } => label.clone(),
        _ => None,
    }
}

/// Maps a CFG node to an AST insertion point "just before this node".
fn insert_point_for(g: &ExtendedCfg, b: NodeId) -> Option<InsertPoint> {
    match (&g.cfg.node(b).kind, g.cfg.node(b).stmt) {
        (NodeKind::Entry, _) => Some(InsertPoint::ProgramStart),
        (NodeKind::Exit, _) => None, // "before exit" has no unique stmt; skip
        // A join is "right after the if statement".
        (NodeKind::Join, Some(sid)) => Some(InsertPoint::After(sid)),
        (NodeKind::Join, None) => None,
        // Branch nodes of loops map to "before the loop statement";
        // if-branches likewise map to "before the if".
        (_, Some(sid)) => Some(InsertPoint::Before(sid)),
        (_, None) => None,
    }
}

/// Removes the checkpoint statement behind `node` and inserts an
/// equivalent statement at `point`. Returns `false` (with the program
/// unchanged) if the edit would be a no-op.
fn relocate(
    program: &mut Program,
    g: &ExtendedCfg,
    node: NodeId,
    point: InsertPoint,
) -> Result<bool, Phase3Error> {
    let sid = g.cfg.node(node).stmt.ok_or_else(|| {
        Phase3Error::EditFailed(format!("checkpoint node {node} has no statement"))
    })?;
    match point {
        InsertPoint::Before(t) | InsertPoint::After(t) if t == sid => return Ok(false),
        _ => {}
    }
    let removed = remove_stmt(&mut program.body, sid)
        .ok_or_else(|| Phase3Error::EditFailed(format!("checkpoint statement {sid} not found")))?;
    if !matches!(removed.kind, StmtKind::Checkpoint { .. }) {
        return Err(Phase3Error::EditFailed(format!(
            "statement {sid} is not a checkpoint"
        )));
    }
    let ok = match point {
        InsertPoint::Before(t) => insert_rel(&mut program.body, t, removed, false),
        InsertPoint::After(t) => insert_rel(&mut program.body, t, removed, true),
        InsertPoint::ProgramStart => {
            program.body.insert(0, removed);
            true
        }
    };
    if !ok {
        return Err(Phase3Error::EditFailed(
            "insertion target statement not found".into(),
        ));
    }
    program.renumber();
    Ok(true)
}

pub(crate) fn remove_stmt(block: &mut Block, id: StmtId) -> Option<Stmt> {
    if let Some(pos) = block.iter().position(|s| s.id == id) {
        return Some(block.remove(pos));
    }
    for s in block.iter_mut() {
        let found = match &mut s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => remove_stmt(then_branch, id).or_else(|| remove_stmt(else_branch, id)),
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => remove_stmt(body, id),
            _ => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

fn insert_rel(block: &mut Block, target: StmtId, stmt: Stmt, after: bool) -> bool {
    if let Some(pos) = block.iter().position(|s| s.id == target) {
        block.insert(if after { pos + 1 } else { pos }, stmt);
        return true;
    }
    for s in block.iter_mut() {
        let inner = match &mut s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if insert_rel(then_branch, target, stmt.clone(), after) {
                    true
                } else {
                    insert_rel(else_branch, target, stmt.clone(), after)
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                insert_rel(body, target, stmt.clone(), after)
            }
            _ => false,
        };
        if inner {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::compute_attrs;
    use crate::condition::condition1_holds;
    use crate::iddep::analyze_iddep;
    use crate::matching::match_send_recv;
    use acfc_cfg::build_cfg;
    use acfc_mpsl::{parse, programs, to_source};

    fn run_phase3(p: &Program, n: usize, policy: LoopPolicy) -> Phase3Result {
        let config = Phase3Config {
            nprocs: n,
            policy,
            ..Phase3Config::default()
        };
        ensure_recovery_lines(p, &config)
            .unwrap_or_else(|e| panic!("{}: {e}\n{}", p.name, to_source(p)))
    }

    fn verify_condition1(r: &Phase3Result, n: usize, policy: LoopPolicy) {
        let (cfg, lowered) = build_cfg(&r.program);
        let iddep = analyze_iddep(&cfg, &lowered);
        let attrs = compute_attrs(&cfg, n, &iddep);
        let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::Conservative);
        let idx = index_checkpoints(&cfg, &lowered);
        let g = ExtendedCfg::build(cfg, &m);
        assert!(
            condition1_holds(&g, &idx, policy),
            "condition 1 must hold after phase 3:\n{}",
            to_source(&r.program)
        );
    }

    #[test]
    fn already_safe_program_is_untouched() {
        let p = programs::jacobi(3);
        let r = run_phase3(&p, 4, LoopPolicy::Optimized);
        assert!(r.moves.is_empty());
        assert_eq!(r.program, p);
    }

    #[test]
    fn fig5_checkpoint_moved_before_recv() {
        let p = programs::fig5();
        let r = run_phase3(&p, 4, LoopPolicy::Optimized);
        assert_eq!(r.moves.len(), 1);
        verify_condition1(&r, 4, LoopPolicy::Optimized);
        // The odd arm must now checkpoint before its recv.
        let src = to_source(&r.program);
        let recv_pos = src.find("recv from").unwrap();
        let b_pos = src.find("checkpoint \"B\"").unwrap();
        assert!(
            b_pos < recv_pos,
            "checkpoint B should precede the recv:\n{src}"
        );
    }

    #[test]
    fn fig2_jacobi_repaired() {
        let p = programs::jacobi_odd_even(3);
        let r = run_phase3(&p, 4, LoopPolicy::Optimized);
        assert!(!r.moves.is_empty());
        verify_condition1(&r, 4, LoopPolicy::Optimized);
        // The checkpoints must still be inside the sweep loop under the
        // optimized policy.
        let (cfg, _) = build_cfg(&r.program);
        let li = acfc_cfg::loop_info(&cfg);
        for c in cfg.checkpoint_nodes() {
            if !cfg.preds(c).is_empty() {
                assert!(li.in_loop(c), "checkpoint left the loop");
            }
        }
    }

    #[test]
    fn fig6_checkpoint_hoisted_out_of_loop() {
        let p = programs::fig6(3);
        let r = run_phase3(&p, 4, LoopPolicy::Optimized);
        assert!(!r.moves.is_empty());
        verify_condition1(&r, 4, LoopPolicy::Optimized);
        // Checkpoint A (the in-loop one) must have been moved out: the
        // paper's noted consequence for the Figure 6 shape.
        let (cfg, _) = build_cfg(&r.program);
        let li = acfc_cfg::loop_info(&cfg);
        for c in cfg.checkpoint_nodes() {
            assert!(!li.in_loop(c), "no checkpoint may remain in a loop");
        }
    }

    #[test]
    fn skewed_pipeline_repaired_in_loop() {
        let p = programs::pipeline_skewed(3);
        let r = run_phase3(&p, 4, LoopPolicy::Optimized);
        assert!(!r.moves.is_empty());
        verify_condition1(&r, 4, LoopPolicy::Optimized);
        let (cfg, _) = build_cfg(&r.program);
        let li = acfc_cfg::loop_info(&cfg);
        let in_loop = cfg
            .checkpoint_nodes()
            .iter()
            .filter(|&&c| !cfg.preds(c).is_empty())
            .all(|&c| li.in_loop(c));
        assert!(in_loop, "optimized policy keeps checkpoints in the loop");
    }

    #[test]
    fn skewed_pingpong_repaired() {
        let p = programs::pingpong_skewed(3);
        let r = run_phase3(&p, 4, LoopPolicy::Optimized);
        assert!(!r.moves.is_empty());
        verify_condition1(&r, 4, LoopPolicy::Optimized);
    }

    #[test]
    fn strict_policy_also_converges_on_fig5() {
        let p = programs::fig5();
        let r = run_phase3(&p, 4, LoopPolicy::Strict);
        verify_condition1(&r, 4, LoopPolicy::Strict);
    }

    #[test]
    fn strict_policy_hoists_loops_on_fig2() {
        let p = programs::jacobi_odd_even(2);
        let config = Phase3Config {
            nprocs: 4,
            policy: LoopPolicy::Strict,
            ..Phase3Config::default()
        };
        match ensure_recovery_lines(&p, &config) {
            Ok(r) => {
                verify_condition1(&r, 4, LoopPolicy::Strict);
                // Strict mode must have changed the program (the input
                // violates), either hoisting checkpoints out of the
                // sweep loop or separating their indices.
                assert!(!r.moves.is_empty());
            }
            Err(Phase3Error::Unrepairable { .. }) => {
                // Acceptable documented outcome for strict mode on
                // symmetric exchanges; the optimized policy is the
                // production path.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn all_stock_programs_pass_under_optimized_policy() {
        for p in programs::all_stock() {
            let config = Phase3Config {
                nprocs: 4,
                ..Phase3Config::default()
            };
            let r =
                ensure_recovery_lines(&p, &config).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            verify_condition1(&r, 4, LoopPolicy::Optimized);
        }
    }

    #[test]
    fn moves_report_labels_and_indices() {
        let r = run_phase3(&programs::fig5(), 4, LoopPolicy::Optimized);
        assert_eq!(r.moves[0].index, 1);
        // Either A or B carries its label along.
        assert!(r.moves[0].label.is_some());
        assert!(r.moves[0].description.contains("moved checkpoint"));
    }

    #[test]
    fn transformed_program_still_parses_and_roundtrips() {
        let r = run_phase3(&programs::jacobi_odd_even(3), 4, LoopPolicy::Optimized);
        let src = to_source(&r.program);
        let q = parse(&src).unwrap();
        assert_eq!(q, r.program);
    }
}
