//! The extended CFG `Ĝ`: the CFG plus message edges.
//!
//! §2: *we extend a CFG representation to include message edges that
//! represent the communication between every two corresponding send and
//! receive nodes* (Figure 4). Phase III's Condition 1 is a reachability
//! question over `Ĝ`; this module materialises the combined graph and
//! its reachability closures (with and without CFG backward edges, which
//! the loop optimization distinguishes).

use crate::matching::{Matching, MessageEdge};
use acfc_cfg::{loop_info, to_dot, Cfg, LoopInfo, NodeId, Reach};
use std::collections::HashMap;

/// The extended CFG of a program.
#[derive(Debug, Clone)]
pub struct ExtendedCfg {
    /// The underlying CFG (unchanged).
    pub cfg: Cfg,
    /// Message edges from Phase II.
    pub message_edges: Vec<MessageEdge>,
    /// Loop structure of the CFG (backward edges, natural loops).
    pub loops: LoopInfo,
    /// Reachability over all edges of `Ĝ`.
    reach_full: Reach,
    /// Reachability over `Ĝ` minus the CFG's backward edges (message
    /// edges retained).
    reach_forward: Reach,
    /// Per-checkpoint "message-reach" rows over `reach_full`: bit `b`
    /// of `msg_full[c]` is set iff some message edge `e` satisfies
    /// `c ⇝= e.send` and `e.recv ⇝= b`. Condition 1 probes these rows
    /// instead of scanning every message edge per checkpoint pair.
    msg_full: HashMap<NodeId, Vec<u64>>,
    /// Same rows over `reach_forward` (no CFG backward edges).
    msg_forward: HashMap<NodeId, Vec<u64>>,
}

/// OR-precomputation of the per-checkpoint message-reach rows (see
/// [`ExtendedCfg::reaches_via_message`]): for each checkpoint `c`, the
/// union over admissible message edges of `{e.recv} ∪ row(e.recv)` —
/// whole-row bitset unions via [`Reach::row`], not per-bit probes.
fn message_rows(
    checkpoints: &[NodeId],
    edges: &[MessageEdge],
    reach: &Reach,
) -> HashMap<NodeId, Vec<u64>> {
    let words = reach.row_words();
    checkpoints
        .iter()
        .map(|&c| {
            let mut row = vec![0u64; words];
            for e in edges {
                if !reach.reachable_or_eq(c.index(), e.send.index()) {
                    continue;
                }
                let r = e.recv.index();
                row[r / 64] |= 1u64 << (r % 64);
                for (dst, src) in row.iter_mut().zip(reach.row(r)) {
                    *dst |= src;
                }
            }
            (c, row)
        })
        .collect()
}

impl ExtendedCfg {
    /// Builds `Ĝ` from a CFG and a matching.
    pub fn build(cfg: Cfg, matching: &Matching) -> ExtendedCfg {
        let loops = loop_info(&cfg);
        let n = cfg.len();
        let mut full: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut forward: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b, _) in cfg.edges() {
            full[a.index()].push(b.index());
            if !loops.is_back_edge(a, b) {
                forward[a.index()].push(b.index());
            }
        }
        for e in &matching.edges {
            full[e.send.index()].push(e.recv.index());
            forward[e.send.index()].push(e.recv.index());
        }
        let reach_full = Reach::compute(&full);
        let reach_forward = Reach::compute(&forward);
        let checkpoints = cfg.checkpoint_nodes();
        let msg_full = message_rows(&checkpoints, &matching.edges, &reach_full);
        let msg_forward = message_rows(&checkpoints, &matching.edges, &reach_forward);
        ExtendedCfg {
            cfg,
            message_edges: matching.edges.clone(),
            loops,
            reach_full,
            reach_forward,
            msg_full,
            msg_forward,
        }
    }

    /// `true` iff a path of length ≥ 1 exists from `a` to `b` in `Ĝ`
    /// (backward edges included).
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        self.reach_full.reachable(a.index(), b.index())
    }

    /// `true` iff a path exists from `a` to `b` in `Ĝ` that uses **no
    /// CFG backward edge** (message edges allowed).
    pub fn reaches_forward(&self, a: NodeId, b: NodeId) -> bool {
        self.reach_forward.reachable(a.index(), b.index())
    }

    /// `true` iff a `Ĝ`-path from `a` to `b` exists that crosses at
    /// least one **message edge**. Happened-before between checkpoints
    /// of *different* processes (the only pairs a cut contains) always
    /// involves a message, so Condition 1 only needs these paths;
    /// message-free CFG paths between checkpoints with disjoint rank
    /// attributes are not cross-process causality.
    pub fn reaches_via_message(&self, a: NodeId, b: NodeId) -> bool {
        match self.msg_full.get(&a) {
            // Checkpoint sources (Condition 1's only callers) hit the
            // precomputed row: a single bit probe.
            Some(row) => row[b.index() / 64] & (1u64 << (b.index() % 64)) != 0,
            None => self.message_edges.iter().any(|e| {
                self.reach_full.reachable_or_eq(a.index(), e.send.index())
                    && self.reach_full.reachable_or_eq(e.recv.index(), b.index())
            }),
        }
    }

    /// Like [`ExtendedCfg::reaches_via_message`], using no CFG backward
    /// edges.
    pub fn reaches_forward_via_message(&self, a: NodeId, b: NodeId) -> bool {
        match self.msg_forward.get(&a) {
            Some(row) => row[b.index() / 64] & (1u64 << (b.index() % 64)) != 0,
            None => self.message_edges.iter().any(|e| {
                self.reach_forward
                    .reachable_or_eq(a.index(), e.send.index())
                    && self
                        .reach_forward
                        .reachable_or_eq(e.recv.index(), b.index())
            }),
        }
    }

    /// Adjacency of `Ĝ` (all edges) as raw lists, for path finding.
    pub fn adjacency_full(&self) -> Vec<Vec<usize>> {
        let n = self.cfg.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b, _) in self.cfg.edges() {
            adj[a.index()].push(b.index());
        }
        for e in &self.message_edges {
            adj[e.send.index()].push(e.recv.index());
        }
        adj
    }

    /// Adjacency of `Ĝ` minus CFG backward edges.
    pub fn adjacency_forward(&self) -> Vec<Vec<usize>> {
        let n = self.cfg.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b, _) in self.cfg.edges() {
            if !self.loops.is_back_edge(a, b) {
                adj[a.index()].push(b.index());
            }
        }
        for e in &self.message_edges {
            adj[e.send.index()].push(e.recv.index());
        }
        adj
    }

    /// Graphviz rendering with message edges dashed (Figure 4 style).
    pub fn to_dot(&self) -> String {
        let extra: Vec<(NodeId, NodeId)> = self
            .message_edges
            .iter()
            .map(|e| (e.send, e.recv))
            .collect();
        to_dot(&self.cfg, &extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::compute_attrs;
    use crate::iddep::analyze_iddep;
    use crate::matching::{match_send_recv, MatchingMode};
    use acfc_cfg::build_cfg;
    use acfc_mpsl::parse;

    fn extended(src: &str, n: usize) -> ExtendedCfg {
        let p = parse(src).unwrap();
        let (cfg, lowered) = build_cfg(&p);
        let iddep = analyze_iddep(&cfg, &lowered);
        let attrs = compute_attrs(&cfg, n, &iddep);
        let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::Conservative);
        ExtendedCfg::build(cfg, &m)
    }

    #[test]
    fn message_edge_creates_cross_path_reachability() {
        let g = extended(
            "program t;
             if rank % 2 == 0 { checkpoint; send to rank + 1; }
             else { recv from rank - 1; checkpoint; }",
            4,
        );
        let chks = g.cfg.checkpoint_nodes();
        let (even_c, odd_c) = (chks[0], chks[1]);
        // Without the message edge there is no path between branch arms;
        // with it, the even checkpoint reaches the odd one (Figure 5).
        assert!(g.reaches(even_c, odd_c));
        assert!(g.reaches_forward(even_c, odd_c));
        assert!(!g.reaches(odd_c, even_c));
    }

    #[test]
    fn forward_reach_excludes_back_edges() {
        let g = extended(
            "program t; var i;
             for i in 0..3 { compute 1; checkpoint; }",
            2,
        );
        let c = g.cfg.checkpoint_nodes()[0];
        // Via the back edge the checkpoint reaches itself...
        assert!(g.reaches(c, c));
        // ...but not on forward edges alone.
        assert!(!g.reaches_forward(c, c));
    }

    #[test]
    fn fig6_back_edge_path_detected() {
        let g = {
            let p = acfc_mpsl::programs::fig6(3);
            let (cfg, lowered) = build_cfg(&p);
            let iddep = analyze_iddep(&cfg, &lowered);
            let attrs = compute_attrs(&cfg, 4, &iddep);
            let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::Conservative);
            ExtendedCfg::build(cfg, &m)
        };
        let chks = g.cfg.checkpoint_nodes();
        assert_eq!(chks.len(), 2);
        // Path A's checkpoint (in the loop) vs B's (before its loop):
        // B reaches A only through a backward edge.
        let a = chks[0]; // loop checkpoint ("A" arm appears first)
        let b = chks[1];
        assert!(g.reaches(b, a), "B must reach A through the loop");
        assert!(
            !g.reaches_forward(b, a),
            "the only path crosses the back edge"
        );
    }

    #[test]
    fn dot_includes_dashed_message_edges() {
        let g = extended(
            "program t; if rank == 0 { send to 1; } else { recv from 0; }",
            2,
        );
        assert_eq!(g.message_edges.len(), 1);
        let dot = g.to_dot();
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn message_rows_agree_with_edge_scan() {
        let g = extended(
            "program t; var i;
             for i in 0..3 {
               if rank % 2 == 0 { checkpoint; send to rank + 1; recv from rank + 1; }
               else { recv from rank - 1; checkpoint; send to rank - 1; }
             }",
            4,
        );
        assert!(!g.message_edges.is_empty());
        for c in g.cfg.checkpoint_nodes() {
            for b in g.cfg.node_ids() {
                let scan_full = g.message_edges.iter().any(|e| {
                    g.reach_full.reachable_or_eq(c.index(), e.send.index())
                        && g.reach_full.reachable_or_eq(e.recv.index(), b.index())
                });
                assert_eq!(g.reaches_via_message(c, b), scan_full, "full ({c},{b})");
                let scan_fwd = g.message_edges.iter().any(|e| {
                    g.reach_forward.reachable_or_eq(c.index(), e.send.index())
                        && g.reach_forward.reachable_or_eq(e.recv.index(), b.index())
                });
                assert_eq!(
                    g.reaches_forward_via_message(c, b),
                    scan_fwd,
                    "forward ({c},{b})"
                );
            }
        }
    }

    #[test]
    fn adjacency_shapes_agree_with_reach() {
        let g = extended(
            "program t; var i; for i in 0..2 { send to (rank+1)%nprocs; recv from (rank-1)%nprocs; checkpoint; }",
            4,
        );
        let full = g.adjacency_full();
        let fwd = g.adjacency_forward();
        let edge_count_full: usize = full.iter().map(|v| v.len()).sum();
        let edge_count_fwd: usize = fwd.iter().map(|v| v.len()).sum();
        assert!(edge_count_fwd < edge_count_full, "back edge removed");
        let r_full = acfc_cfg::Reach::compute(&full);
        for a in 0..full.len() {
            for b in 0..full.len() {
                assert_eq!(
                    r_full.reachable(a, b),
                    g.reaches(NodeId(a as u32), NodeId(b as u32))
                );
            }
        }
    }
}
