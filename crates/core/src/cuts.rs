//! Checkpoint enumeration — the static straight cuts `S_i`.
//!
//! §2: checkpoint nodes are enumerated along every path from `entry` to
//! `exit`; `C_i^γ` is the `i`-th checkpoint node along path `γ`, and
//! `S_i` collects the `C_i`'s of every path. A checkpoint statement in a
//! loop keeps the same index in every iteration, so a loop body's
//! checkpoints are counted **once** (and code after the loop continues
//! from that count — the paper's programs always enter their sweep
//! loops, and non-ID-dependent loops trip identically in every process,
//! so dynamic sequence numbers stay aligned with these static indices).
//!
//! A checkpoint node can still have different ordinals along different
//! paths (below a branch whose arms hold different numbers of
//! checkpoints); we therefore compute an index **interval**
//! `[min_index, max_index]` per node by a structural walk of the
//! program, and define `S_i` as all nodes whose interval contains `i`.
//! Phase I's equalisation collapses the intervals to points; §3.1: *"we
//! may add/remove some of the checkpoints to ensure that every path of
//! the CFG has the same number of checkpoint nodes."*

use acfc_cfg::{Cfg, NodeId};
use acfc_mpsl::{Block, Program, StmtId, StmtKind};
use std::collections::HashMap;

/// Index interval of a checkpoint node (1-based, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRange {
    /// Smallest index this node can have on any path.
    pub min: u32,
    /// Largest index this node can have on any path.
    pub max: u32,
}

impl IndexRange {
    /// `true` when the node has a unique index on every path.
    pub fn is_exact(&self) -> bool {
        self.min == self.max
    }

    /// `true` when `i` falls in the interval.
    pub fn contains(&self, i: u32) -> bool {
        self.min <= i && i <= self.max
    }

    /// `true` when two intervals overlap (the nodes can share an index).
    pub fn overlaps(&self, other: &IndexRange) -> bool {
        self.min <= other.max && other.min <= self.max
    }
}

/// The static checkpoint structure of a program/CFG pair.
#[derive(Debug, Clone)]
pub struct CheckpointIndex {
    /// Index interval per checkpoint node.
    pub ranges: HashMap<NodeId, IndexRange>,
    /// Checkpoints seen along complete executions: `[min, max]` of the
    /// per-path totals (`m` in Algorithm 3.2 when exact).
    pub total: IndexRange,
}

impl CheckpointIndex {
    /// All checkpoint nodes whose interval contains `i`, i.e. the
    /// members of `S_i`.
    pub fn straight_cut(&self, i: u32) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .ranges
            .iter()
            .filter(|(_, r)| r.contains(i))
            .map(|(&n, _)| n)
            .collect();
        v.sort();
        v
    }

    /// The largest index any node can take.
    pub fn max_index(&self) -> u32 {
        self.ranges.values().map(|r| r.max).max().unwrap_or(0)
    }

    /// `true` iff every checkpoint node has an exact index **and** every
    /// entry→exit path sees the same number of checkpoints — the §3.1
    /// well-formedness Phase I establishes.
    pub fn is_exact(&self) -> bool {
        self.total.is_exact() && self.ranges.values().all(|r| r.is_exact())
    }

    /// Pairs of distinct checkpoint nodes that can share an index — the
    /// pairs Condition 1 must check.
    pub fn same_index_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut nodes: Vec<(NodeId, IndexRange)> =
            self.ranges.iter().map(|(&n, &r)| (n, r)).collect();
        nodes.sort_by_key(|&(n, _)| n);
        let mut out = Vec::new();
        for (i, &(a, ra)) in nodes.iter().enumerate() {
            for &(b, rb) in nodes.iter().skip(i + 1) {
                if ra.overlaps(&rb) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

/// Computes checkpoint index intervals by a structural walk of the
/// (lowered) program, then maps them onto the CFG's checkpoint nodes
/// through their statement ids.
///
/// # Panics
///
/// Panics if a checkpoint node of the CFG has no statement id or its
/// statement is missing from the program (the CFG must have been built
/// from this exact program).
pub fn index_checkpoints(cfg: &Cfg, program: &Program) -> CheckpointIndex {
    let mut by_stmt: HashMap<StmtId, IndexRange> = HashMap::new();
    let total = walk(&program.body, (0, 0), &mut by_stmt);
    let mut ranges = HashMap::new();
    for c in cfg.checkpoint_nodes() {
        // Checkpoint nodes detached by Phase III edits are stale arena
        // entries; skip them.
        if cfg.preds(c).is_empty() && cfg.succs(c).is_empty() {
            continue;
        }
        let sid = cfg
            .node(c)
            .stmt
            .expect("checkpoint nodes carry statement ids");
        let range = by_stmt
            .get(&sid)
            .unwrap_or_else(|| panic!("checkpoint stmt {sid} not found in program"));
        ranges.insert(c, *range);
    }
    CheckpointIndex {
        ranges,
        total: IndexRange {
            min: total.0,
            max: total.1,
        },
    }
}

/// Walks a block with a running `(min, max)` count of checkpoints seen
/// so far; records each checkpoint statement's index interval; returns
/// the updated running count.
fn walk(
    block: &Block,
    mut running: (u32, u32),
    out: &mut HashMap<StmtId, IndexRange>,
) -> (u32, u32) {
    for stmt in block {
        match &stmt.kind {
            StmtKind::Checkpoint { .. } => {
                out.insert(
                    stmt.id,
                    IndexRange {
                        min: running.0 + 1,
                        max: running.1 + 1,
                    },
                );
                running = (running.0 + 1, running.1 + 1);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let t = walk(then_branch, running, out);
                let e = walk(else_branch, running, out);
                running = (t.0.min(e.0), t.1.max(e.1));
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                // Loop checkpoints keep one static index per statement;
                // code after the loop continues from the body's count.
                running = walk(body, running, out);
            }
            _ => {}
        }
    }
    running
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_cfg::build_cfg;
    use acfc_mpsl::parse;

    fn index_of(src: &str) -> (acfc_cfg::Cfg, CheckpointIndex) {
        let p = parse(src).unwrap();
        let (cfg, lowered) = build_cfg(&p);
        let idx = index_checkpoints(&cfg, &lowered);
        (cfg, idx)
    }

    #[test]
    fn sequential_checkpoints_numbered_in_order() {
        let (cfg, idx) = index_of("program t; checkpoint; compute 1; checkpoint;");
        let chks = cfg.checkpoint_nodes();
        assert_eq!(idx.ranges[&chks[0]], IndexRange { min: 1, max: 1 });
        assert_eq!(idx.ranges[&chks[1]], IndexRange { min: 2, max: 2 });
        assert_eq!(idx.total, IndexRange { min: 2, max: 2 });
        assert!(idx.is_exact());
        assert_eq!(idx.straight_cut(1), vec![chks[0]]);
        assert_eq!(idx.max_index(), 2);
    }

    #[test]
    fn branch_arms_share_the_index() {
        // Figure 2 pattern: one checkpoint in each arm, both are C_1.
        let (cfg, idx) = index_of(
            "program t;
             if rank % 2 == 0 { checkpoint; } else { compute 1; checkpoint; }",
        );
        let chks = cfg.checkpoint_nodes();
        for c in &chks {
            assert_eq!(idx.ranges[c], IndexRange { min: 1, max: 1 });
        }
        assert_eq!(idx.straight_cut(1).len(), 2);
        assert_eq!(idx.same_index_pairs().len(), 1);
        assert!(idx.is_exact());
    }

    #[test]
    fn loop_checkpoint_counted_once() {
        let (cfg, idx) = index_of(
            "program t; var i;
             for i in 0..5 { checkpoint; }
             checkpoint;",
        );
        let chks = cfg.checkpoint_nodes();
        assert_eq!(idx.ranges[&chks[0]], IndexRange { min: 1, max: 1 });
        assert_eq!(idx.ranges[&chks[1]], IndexRange { min: 2, max: 2 });
        assert!(idx.is_exact());
        assert_eq!(idx.total, IndexRange { min: 2, max: 2 });
    }

    #[test]
    fn unbalanced_arms_produce_intervals() {
        let (cfg, idx) = index_of(
            "program t; var x;
             if x > 0 { checkpoint; checkpoint; }
             checkpoint;",
        );
        let chks = cfg.checkpoint_nodes();
        // The trailing checkpoint is 1st on the false path, 3rd on the
        // true path.
        assert_eq!(idx.ranges[&chks[2]], IndexRange { min: 1, max: 3 });
        assert!(!idx.is_exact());
        assert_eq!(idx.total, IndexRange { min: 1, max: 3 });
        // It can share an index with the first in-arm checkpoint (both
        // can be C_1? no: in-arm first is always 1, trailing covers 1) —
        // and with the second (index 2 within 1..3). The two in-arm
        // checkpoints have disjoint exact indices.
        assert_eq!(idx.same_index_pairs().len(), 2);
    }

    #[test]
    fn nested_loops_still_exact() {
        let (cfg, idx) = index_of(
            "program t; var i, j;
             for i in 0..2 {
               checkpoint;
               for j in 0..2 { checkpoint; }
             }",
        );
        let chks = cfg.checkpoint_nodes();
        assert_eq!(idx.ranges[&chks[0]], IndexRange { min: 1, max: 1 });
        assert_eq!(idx.ranges[&chks[1]], IndexRange { min: 2, max: 2 });
        assert!(idx.is_exact());
    }

    #[test]
    fn fig2_jacobi_both_checkpoints_are_c1() {
        let p = acfc_mpsl::programs::jacobi_odd_even(3);
        let (cfg, lowered) = build_cfg(&p);
        let idx = index_checkpoints(&cfg, &lowered);
        let chks = cfg.checkpoint_nodes();
        assert_eq!(chks.len(), 2);
        for c in &chks {
            assert_eq!(idx.ranges[c], IndexRange { min: 1, max: 1 });
        }
        assert_eq!(idx.same_index_pairs().len(), 1);
    }

    #[test]
    fn no_checkpoints_yields_empty_index() {
        let (_, idx) = index_of("program t; compute 1;");
        assert!(idx.ranges.is_empty());
        assert_eq!(idx.max_index(), 0);
        assert!(idx.straight_cut(1).is_empty());
        assert_eq!(idx.total, IndexRange { min: 0, max: 0 });
    }

    #[test]
    fn range_overlap_logic() {
        let a = IndexRange { min: 1, max: 2 };
        let b = IndexRange { min: 2, max: 3 };
        let c = IndexRange { min: 3, max: 4 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.contains(1) && !a.contains(3));
        assert!(!a.is_exact());
        assert!(IndexRange { min: 2, max: 2 }.is_exact());
    }
}
