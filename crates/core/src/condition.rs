//! Phase III, part 1 — checking Condition 1.
//!
//! **Condition 1** (§3.3): if for every `i` there is no path in the
//! extended CFG between any two checkpoint nodes of `S_i`, then in any
//! further execution `R_i` is a recovery line.
//!
//! Two policies are provided:
//!
//! * [`LoopPolicy::Strict`] — Condition 1 verbatim: *any* `Ĝ`-path
//!   between distinct same-index checkpoint nodes is a violation.
//!   Algorithm 3.2 under this policy may move checkpoints out of loops
//!   (the drawback the paper notes).
//! * [`LoopPolicy::Optimized`] — the paper's loop optimization: a path
//!   that crosses a CFG backward edge is tolerated **when both endpoint
//!   checkpoints sit inside loops** (their per-iteration instances are
//!   then aligned by the blocking FIFO semantics and recovery uses
//!   sequence-aligned straight cuts); it is still a violation when
//!   either endpoint is outside every loop — exactly the Figure 6
//!   situation, where B checkpoints once while A's index repeats.
//!
//! The checker reports one witness path per violating pair for
//! diagnostics; Phase III (Algorithm 3.2) consumes the violations.

use crate::cuts::CheckpointIndex;
use crate::extended::ExtendedCfg;
use acfc_cfg::{find_path, NodeId};

/// The loop-handling policy for Condition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopPolicy {
    /// Condition 1 exactly as stated (no path at all).
    Strict,
    /// The paper's loop optimization (see module docs). Default.
    #[default]
    Optimized,
}

/// A violation of Condition 1: a `Ĝ`-path between two same-index
/// checkpoint nodes.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path source (`C_i^A` in the paper's notation).
    pub from: NodeId,
    /// Path target (`C_i^B`; Algorithm 3.2 moves this one back).
    pub to: NodeId,
    /// A shared index of the two nodes.
    pub index: u32,
    /// Whether every witness path crosses a CFG backward edge (i.e. the
    /// violation exists only under [`LoopPolicy::Strict`], or because an
    /// endpoint is outside all loops).
    pub only_via_back_edge: bool,
    /// One witness path (node sequence from `from` to `to`), for
    /// diagnostics.
    pub witness: Vec<NodeId>,
}

/// Checks Condition 1 over all same-index checkpoint pairs.
///
/// Returns all violating ordered pairs (empty = the condition holds and
/// Theorem 3.2 applies).
pub fn check_condition1(
    g: &ExtendedCfg,
    index: &CheckpointIndex,
    policy: LoopPolicy,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let adj_full = g.adjacency_full();
    for (a, b) in index.same_index_pairs() {
        for (from, to) in [(a, b), (b, a)] {
            // Only message-crossing paths witness cross-process
            // happened-before (a cut holds one checkpoint per process),
            // so message-free CFG paths between same-index nodes with
            // disjoint attributes are not violations.
            if !g.reaches_via_message(from, to) {
                continue;
            }
            let forward = g.reaches_forward_via_message(from, to);
            let violation = match policy {
                LoopPolicy::Strict => true,
                LoopPolicy::Optimized => forward || !(g.loops.in_loop(from) && g.loops.in_loop(to)),
            };
            if !violation {
                continue;
            }
            let shared = index.ranges[&from].min.max(index.ranges[&to].min);
            let witness = find_path(&adj_full, from.index(), to.index(), &|_, _| true)
                .map(|p| p.into_iter().map(|i| NodeId(i as u32)).collect())
                .unwrap_or_default();
            out.push(Violation {
                from,
                to,
                index: shared,
                only_via_back_edge: !forward,
                witness,
            });
        }
    }
    out
}

/// `true` iff Condition 1 holds under the given policy.
pub fn condition1_holds(g: &ExtendedCfg, index: &CheckpointIndex, policy: LoopPolicy) -> bool {
    check_condition1(g, index, policy).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::compute_attrs;
    use crate::cuts::index_checkpoints;
    use crate::iddep::analyze_iddep;
    use crate::matching::{match_send_recv, MatchingMode};
    use acfc_cfg::build_cfg;
    use acfc_mpsl::{parse, programs, Program};

    fn setup(p: &Program, n: usize) -> (ExtendedCfg, CheckpointIndex) {
        let (cfg, lowered) = build_cfg(p);
        let iddep = analyze_iddep(&cfg, &lowered);
        let attrs = compute_attrs(&cfg, n, &iddep);
        let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::Conservative);
        let idx = index_checkpoints(&cfg, &lowered);
        (ExtendedCfg::build(cfg, &m), idx)
    }

    #[test]
    fn uniform_jacobi_satisfies_condition1() {
        let p = programs::jacobi(3);
        let (g, idx) = setup(&p, 4);
        assert!(condition1_holds(&g, &idx, LoopPolicy::Optimized));
        // Strictly, the single checkpoint node has no distinct pair, so
        // even Strict holds for Figure 1.
        assert!(condition1_holds(&g, &idx, LoopPolicy::Strict));
    }

    #[test]
    fn fig5_violates_under_both_policies() {
        let p = programs::fig5();
        let (g, idx) = setup(&p, 4);
        let strict = check_condition1(&g, &idx, LoopPolicy::Strict);
        let opt = check_condition1(&g, &idx, LoopPolicy::Optimized);
        assert!(!strict.is_empty());
        assert!(!opt.is_empty());
        // The witness runs A -> send -> recv -> B with no back edge.
        let v = &opt[0];
        assert!(!v.only_via_back_edge);
        assert!(v.witness.len() >= 3);
        assert_eq!(v.witness.first(), Some(&v.from));
        assert_eq!(v.witness.last(), Some(&v.to));
    }

    #[test]
    fn fig2_jacobi_violates() {
        let p = programs::jacobi_odd_even(3);
        let (g, idx) = setup(&p, 4);
        let v = check_condition1(&g, &idx, LoopPolicy::Optimized);
        assert!(!v.is_empty(), "Figure 2's odd/even placement must violate");
        // Exactly the even→odd direction violates within one iteration
        // (even checkpoints, sends; odd receives, checkpoints); the
        // reverse direction only crosses a back edge between *adjacent*
        // indices, which the loop optimization admits.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v.iter().all(|x| x.index == 1));
        assert!(v.iter().all(|x| !x.only_via_back_edge));
    }

    #[test]
    fn fig6_violates_optimized_because_b_is_loopless() {
        let p = programs::fig6(3);
        let (g, idx) = setup(&p, 4);
        let v = check_condition1(&g, &idx, LoopPolicy::Optimized);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].only_via_back_edge,
            "Figure 6's path crosses the loop's backward edge"
        );
    }

    #[test]
    fn symmetric_loop_exchange_allowed_by_optimization() {
        // chkpt-then-send / chkpt-then-recv in loops on both sides:
        // the only cross paths go through back edges and both endpoints
        // are in loops. Optimized accepts, Strict rejects.
        let p = parse(
            "program t; var i;
             for i in 0..3 {
               if rank % 2 == 0 {
                 checkpoint;
                 send to rank + 1;
                 recv from rank + 1;
               } else {
                 checkpoint;
                 recv from rank - 1;
                 send to rank - 1;
               }
             }",
        )
        .unwrap();
        let (g, idx) = setup(&p, 4);
        let strict = check_condition1(&g, &idx, LoopPolicy::Strict);
        let opt = check_condition1(&g, &idx, LoopPolicy::Optimized);
        assert!(!strict.is_empty(), "back-edge paths exist");
        assert!(strict.iter().all(|v| v.only_via_back_edge));
        assert!(
            opt.is_empty(),
            "loop optimization admits aligned in-loop checkpoints: {opt:?}"
        );
    }

    #[test]
    fn skewed_pipeline_violates_forward() {
        let p = programs::pipeline_skewed(3);
        let (g, idx) = setup(&p, 4);
        let v = check_condition1(&g, &idx, LoopPolicy::Optimized);
        assert!(!v.is_empty());
        assert!(v.iter().any(|x| !x.only_via_back_edge));
    }

    #[test]
    fn no_checkpoints_trivially_holds() {
        let p = parse("program t; send to (rank + 1) % nprocs; recv from (rank - 1) % nprocs;")
            .unwrap();
        let (g, idx) = setup(&p, 4);
        assert!(condition1_holds(&g, &idx, LoopPolicy::Strict));
    }
}
