//! The end-to-end offline analysis pipeline.
//!
//! Chains the paper's three phases:
//!
//! 1. **Phase I** — checkpoint insertion (if the program has none) and
//!    per-path count equalisation (§3.1);
//! 2. **Phase II** — ID-dependence dataflow, rank attributes, and
//!    Algorithm 3.1 send/recv matching, producing the extended CFG `Ĝ`
//!    (§3.2);
//! 3. **Phase III** — Condition 1 checking and Algorithm 3.2 checkpoint
//!    relocation until every straight cut of checkpoints is a recovery
//!    line in any further execution (§3.3, Theorem 3.2).
//!
//! The result is a transformed program that the simulator (or a real
//! runtime) executes **with no coordination whatsoever**: each process
//! checkpoints at the analysis-placed statements, and recovery always
//! rolls back to the straight cut of the latest common checkpoint
//! index.

use crate::condition::LoopPolicy;
use crate::cuts::{index_checkpoints, CheckpointIndex};
use crate::extended::ExtendedCfg;
use crate::matching::MatchingMode;
use crate::phase1::{equalize_checkpoints, insert_checkpoints, InsertionConfig};
use crate::phase3::{ensure_recovery_lines, MoveRecord, Phase3Config, Phase3Error};
use acfc_mpsl::Program;
use std::fmt::Write;

/// Configuration of the whole pipeline.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Number of processes the analysis is instantiated at (≤ 128).
    pub nprocs: usize,
    /// Send/recv matching mode (Phase II).
    pub matching: MatchingMode,
    /// Loop policy for Condition 1 (Phase III).
    pub policy: LoopPolicy,
    /// Phase I insertion parameters; `None` disables automatic
    /// insertion (programs are then expected to carry checkpoints).
    pub insertion: Option<InsertionConfig>,
    /// Whether Phase I equalisation runs.
    pub equalize: bool,
    /// Phase III iteration cap.
    pub max_iterations: usize,
    /// Reuse Phase II results across Algorithm 3.2 iterations via
    /// [`crate::ReanalysisCache`] (checkpoint moves cannot change the
    /// communication structure, so the matching replays by ordinal).
    pub incremental: bool,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            nprocs: 8,
            matching: MatchingMode::FifoOrdered,
            policy: LoopPolicy::Optimized,
            insertion: Some(InsertionConfig::default()),
            equalize: true,
            max_iterations: 32,
            incremental: true,
        }
    }
}

impl AnalysisConfig {
    /// A configuration for `n` processes, defaults elsewhere.
    pub fn for_nprocs(n: usize) -> AnalysisConfig {
        AnalysisConfig {
            nprocs: n,
            ..AnalysisConfig::default()
        }
    }
}

/// The pipeline's output.
#[derive(Debug)]
pub struct Analysis {
    /// The transformed program: run this.
    pub program: Program,
    /// The program as received (post collective-lowering).
    pub original: Program,
    /// The final extended CFG.
    pub extended: ExtendedCfg,
    /// The final checkpoint index (exact after equalisation).
    pub index: CheckpointIndex,
    /// Checkpoints Phase I inserted.
    pub inserted: usize,
    /// Checkpoints Phase I added for equalisation.
    pub equalized: usize,
    /// Algorithm 3.2 relocations.
    pub moves: Vec<MoveRecord>,
}

impl Analysis {
    /// `true` when Phase III changed nothing: the program was already
    /// coordination-free checkpointable as written.
    pub fn was_already_safe(&self) -> bool {
        self.moves.is_empty() && self.inserted == 0 && self.equalized == 0
    }

    /// A human-readable report of what the analysis did.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "program: {}", self.program.name);
        let _ = writeln!(
            out,
            "checkpoint statements: {}",
            self.program.checkpoint_ids().len()
        );
        let _ = writeln!(
            out,
            "phase I: {} inserted, {} added for equalisation",
            self.inserted, self.equalized
        );
        let _ = writeln!(
            out,
            "phase II: {} message edge(s)",
            self.extended.message_edges.len()
        );
        let _ = writeln!(out, "phase III: {} relocation(s)", self.moves.len());
        for m in &self.moves {
            let _ = writeln!(out, "  - [S_{}] {}", m.index, m.description);
        }
        let _ = writeln!(
            out,
            "result: every straight cut of checkpoints is a recovery line \
             in any further execution (Theorem 3.2)"
        );
        out
    }

    /// Graphviz rendering of the final extended CFG.
    pub fn to_dot(&self) -> String {
        self.extended.to_dot()
    }
}

/// Errors from the pipeline.
#[derive(Debug)]
pub enum AnalysisError {
    /// The program failed MPSL validation.
    Invalid(Vec<acfc_mpsl::ValidateError>),
    /// Phase III could not ensure Condition 1.
    Phase3(Phase3Error),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Invalid(errs) => {
                write!(f, "program is invalid: ")?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            AnalysisError::Phase3(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<Phase3Error> for AnalysisError {
    fn from(e: Phase3Error) -> AnalysisError {
        AnalysisError::Phase3(e)
    }
}

/// Runs the full three-phase analysis.
///
/// # Errors
///
/// [`AnalysisError::Invalid`] if the program fails validation;
/// [`AnalysisError::Phase3`] if Algorithm 3.2 cannot establish
/// Condition 1 within the iteration cap.
///
/// # Examples
///
/// ```
/// use acfc_core::{analyze, AnalysisConfig};
///
/// // Figure 2's odd/even Jacobi is unsafe as written; the pipeline
/// // relocates its checkpoints so every straight cut is a recovery line.
/// let program = acfc_mpsl::programs::jacobi_odd_even(10);
/// let analysis = analyze(&program, &AnalysisConfig::for_nprocs(8))?;
/// assert!(!analysis.moves.is_empty());
/// # Ok::<(), acfc_core::AnalysisError>(())
/// ```
pub fn analyze(program: &Program, config: &AnalysisConfig) -> Result<Analysis, AnalysisError> {
    let _pipeline = acfc_obs::span("core/analyze");
    let errors = acfc_mpsl::validate(program);
    if !errors.is_empty() {
        return Err(AnalysisError::Invalid(errors));
    }
    let mut prepared = program.clone();
    if prepared.has_collectives() {
        prepared.lower_collectives();
    }
    let original = prepared.clone();
    // Phase I.
    let (inserted, equalized) = {
        let _phase1 = acfc_obs::span("core/phase1");
        let inserted = {
            let _insert = acfc_obs::span("core/phase1/insert");
            match &config.insertion {
                Some(ic) => insert_checkpoints(&mut prepared, ic).inserted,
                None => 0,
            }
        };
        let equalized = if config.equalize {
            let _equalize = acfc_obs::span("core/phase1/equalize");
            equalize_checkpoints(&mut prepared)
        } else {
            0
        };
        (inserted, equalized)
    };
    acfc_obs::count("core/phase1/inserted", inserted as u64);
    acfc_obs::count("core/phase1/equalized", equalized as u64);
    // Phases II + III.
    let p3 = Phase3Config {
        nprocs: config.nprocs,
        matching: config.matching,
        policy: config.policy,
        max_iterations: config.max_iterations,
        incremental: config.incremental,
    };
    let result = {
        let _phase23 = acfc_obs::span("core/phase2_3");
        ensure_recovery_lines(&prepared, &p3)?
    };
    acfc_obs::count("core/phase3/moves", result.moves.len() as u64);
    let index = index_checkpoints(&result.extended.cfg, &result.program);
    Ok(Analysis {
        program: result.program,
        original,
        extended: result.extended,
        index,
        inserted,
        equalized,
        moves: result.moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::{parse, programs};

    #[test]
    fn safe_program_passes_through() {
        let p = programs::jacobi(3);
        let a = analyze(&p, &AnalysisConfig::for_nprocs(4)).unwrap();
        assert!(a.was_already_safe());
        assert_eq!(a.program, a.original);
        assert!(a.report().contains("0 relocation"));
    }

    #[test]
    fn unsafe_program_is_transformed() {
        let p = programs::jacobi_odd_even(3);
        let a = analyze(&p, &AnalysisConfig::for_nprocs(4)).unwrap();
        assert!(!a.was_already_safe());
        assert_ne!(a.program, a.original);
        assert!(a.report().contains("relocation"));
        assert!(a.to_dot().starts_with("digraph"));
    }

    #[test]
    fn invalid_program_rejected() {
        let p = parse("program t; compute x;").unwrap();
        let err = analyze(&p, &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::Invalid(_)));
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn checkpoint_free_program_gets_phase1_insertion() {
        let p = parse(
            "program t; param iters = 50; var i;
             for i in 0..iters {
               compute 100;
               send to (rank + 1) % nprocs size 1024;
               recv from (rank - 1) % nprocs;
             }",
        )
        .unwrap();
        let mut cfg = AnalysisConfig::for_nprocs(4);
        cfg.insertion = Some(InsertionConfig {
            ckpt_overhead_units: 2.0,
            failure_rate_per_unit: 1e-4,
            ..InsertionConfig::default()
        });
        let a = analyze(&p, &cfg).unwrap();
        assert!(a.inserted >= 1);
        assert!(!a.program.checkpoint_ids().is_empty());
    }

    #[test]
    fn insertion_disabled_leaves_program_checkpoint_free() {
        let p = parse("program t; compute 1000;").unwrap();
        let mut cfg = AnalysisConfig::for_nprocs(2);
        cfg.insertion = None;
        let a = analyze(&p, &cfg).unwrap();
        assert_eq!(a.inserted, 0);
        assert!(a.program.checkpoint_ids().is_empty());
    }

    #[test]
    fn unbalanced_arms_are_equalized() {
        let p = parse(
            "program t;
             if rank % 2 == 0 { checkpoint; checkpoint; } else { checkpoint; }",
        )
        .unwrap();
        let a = analyze(&p, &AnalysisConfig::for_nprocs(4)).unwrap();
        assert_eq!(a.equalized, 1);
        assert!(a.index.is_exact());
    }

    #[test]
    fn collectives_are_lowered_first() {
        let p = programs::bcast_reduce(2);
        let a = analyze(&p, &AnalysisConfig::for_nprocs(4)).unwrap();
        assert!(!a.program.has_collectives());
        assert!(!a.extended.message_edges.is_empty());
    }

    #[test]
    fn all_stock_programs_analyze() {
        for p in programs::all_stock() {
            let a = analyze(&p, &AnalysisConfig::for_nprocs(4))
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(
                !a.report().is_empty(),
                "{}: report must be non-empty",
                p.name
            );
        }
    }
}
