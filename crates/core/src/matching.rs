//! Phase II — matching send and receive nodes (Algorithm 3.1).
//!
//! For every `recv` node, find the `send` node(s) that could have
//! produced the message it consumes, by comparing the *source attribute*
//! (which ranks can execute the receive, and which sender its `source`
//! parameter names) against each candidate send's *destination
//! attribute*. A pair matches when the attributes do not contradict:
//!
//! > ∃ sender rank `p`, receiver rank `q`, `p ≠ q`, such that `p` can
//! > execute the send, `q` can execute the receive, the send's
//! > destination at `p` is `q` (or irregular/unresolvable), and the
//! > receive's source at `q` is `p` (or irregular/unresolvable).
//!
//! Irregular patterns (§3.2) — parameters involving `input(·)` or
//! `recv from any` — match every non-contradicting candidate; regular
//! patterns can optionally follow the paper's "prefer not-yet-matched
//! sends" rule ([`MatchingMode::PreferUnmatched`]). The default,
//! [`MatchingMode::Conservative`], matches all non-contradicting pairs —
//! an over-approximation that preserves Lemma 3.1 (the true sender is
//! always among the matches) and errs toward more message edges, i.e.
//! toward *more* conservative checkpoint placement in Phase III.

use crate::attr::NodeAttrs;
use crate::iddep::IdDepInfo;
use acfc_cfg::{dfs, Cfg, NodeId, NodeKind};
use acfc_mpsl::{rank_eval, Expr, RankEnv, RankVal, RecvSrc};
use std::collections::HashMap;

/// How aggressively to match (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchingMode {
    /// Match every non-contradicting (send, recv) pair. Sound
    /// over-approximation, but imprecise: in programs with several
    /// communication phases it cross-matches phase `k`'s sends with
    /// phase `j ≠ k`'s receives, which FIFO channels rule out, and the
    /// spurious edges can make Condition 1 unsatisfiable.
    Conservative,
    /// Algorithm 3.1 as written: a regular receive prefers send nodes
    /// that are not yet matched, falling back to matched ones only when
    /// no unmatched candidate exists (preserving Lemma 3.1).
    PreferUnmatched,
    /// Per-channel FIFO sequence matching (the default). Under the §2
    /// model — reliable FIFO channels, blocking receives, deterministic
    /// SPMD — the `k`-th receive on channel `(p, q)` consumes exactly
    /// the `k`-th send on it. For every concrete rank pair the matcher
    /// therefore lists the channel's send and receive statements in
    /// program order and pairs them positionally; a channel whose
    /// statements cannot all be resolved exactly (irregular or unknown
    /// patterns) or whose send/receive statement counts differ falls
    /// back to all-pairs matching, preserving Lemma 3.1.
    #[default]
    FifoOrdered,
}

/// A message edge `send → recv` in the extended CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageEdge {
    /// The send node.
    pub send: NodeId,
    /// The recv node.
    pub recv: NodeId,
}

/// One matching decision with its witness, for diagnostics.
#[derive(Debug, Clone)]
pub struct MatchWitness {
    /// The matched edge.
    pub edge: MessageEdge,
    /// A `(sender_rank, receiver_rank)` pair realising the match.
    pub witness: (usize, usize),
    /// `true` if either side's pattern was irregular or unresolvable.
    pub irregular: bool,
}

/// Result of Phase II.
#[derive(Debug, Clone)]
pub struct Matching {
    /// All message edges found.
    pub edges: Vec<MessageEdge>,
    /// Witnesses, parallel to `edges`.
    pub witnesses: Vec<MatchWitness>,
    /// Receive nodes with no matching send at all (in a correct SPMD
    /// program this indicates a receive that can never be satisfied at
    /// this `n` — surfaced as a diagnostic).
    pub unmatched_recvs: Vec<NodeId>,
}

impl Matching {
    /// Message edges leaving `send`.
    pub fn sends_of(&self, send: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.send == send)
            .map(|e| e.recv)
            .collect()
    }

    /// Message edges entering `recv`.
    pub fn matches_of(&self, recv: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.recv == recv)
            .map(|e| e.send)
            .collect()
    }
}

/// How a send's destination resolves at a given sender rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    Exactly(usize),
    AnyRank,
    OutOfRange,
}

fn resolve(
    expr: &Expr,
    rank: usize,
    n: usize,
    params: &HashMap<String, i64>,
    var_exprs: &HashMap<String, Expr>,
) -> Resolved {
    let env = RankEnv {
        rank: rank as i64,
        nprocs: n as i64,
        params,
        var_exprs,
    };
    match rank_eval(expr, &env) {
        RankVal::Known(v) if v >= 0 && (v as usize) < n => Resolved::Exactly(v as usize),
        RankVal::Known(_) => Resolved::OutOfRange,
        RankVal::Unknown | RankVal::Irregular => Resolved::AnyRank,
    }
}

fn is_irregular_side(expr: &Expr) -> bool {
    expr.mentions_input()
}

/// Runs Algorithm 3.1 on a CFG with precomputed attributes.
pub fn match_send_recv(
    cfg: &Cfg,
    attrs: &NodeAttrs,
    iddep: &IdDepInfo,
    mode: MatchingMode,
) -> Matching {
    if mode == MatchingMode::FifoOrdered {
        return match_fifo_ordered(cfg, attrs, iddep);
    }
    let n = attrs.nprocs();
    let params = &iddep.params;
    // Scan reachable nodes (DFS from entry, as the algorithm
    // prescribes), but order the send/recv lists by *statement* id —
    // i.e. source order. CFG depth-first preorder dives through one
    // branch arm into everything after the join before visiting the
    // sibling arm, which is not the order in which a process executes
    // statements; FIFO pairing must follow program order.
    let order = dfs(cfg).preorder;
    let by_stmt = |cfg: &Cfg, v: &mut Vec<NodeId>| {
        v.sort_by_key(|&id| cfg.node(id).stmt.expect("comm nodes carry stmt ids"));
    };
    let mut recvs: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&id| matches!(cfg.node(id).kind, NodeKind::Recv { .. }))
        .collect();
    by_stmt(cfg, &mut recvs);
    let mut sends: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&id| matches!(cfg.node(id).kind, NodeKind::Send { .. }))
        .collect();
    by_stmt(cfg, &mut sends);

    let mut edges = Vec::new();
    let mut witnesses = Vec::new();
    let mut unmatched_recvs = Vec::new();
    let mut send_matched: HashMap<NodeId, bool> = sends.iter().map(|&s| (s, false)).collect();

    for &r in &recvs {
        let NodeKind::Recv { src } = &cfg.node(r).kind else {
            unreachable!()
        };
        let recv_irregular = src.is_irregular();
        let r_env = iddep.env_at(r);
        // Candidate evaluation for every send.
        let mut candidates: Vec<(NodeId, (usize, usize), bool)> = Vec::new();
        for &s in &sends {
            let NodeKind::Send { dest, .. } = &cfg.node(s).kind else {
                unreachable!()
            };
            let s_env = iddep.env_at(s);
            let send_irregular = is_irregular_side(dest);
            let mut found: Option<(usize, usize)> = None;
            'search: for p in attrs.of(s).iter() {
                for q in attrs.of(r).iter() {
                    if p == q {
                        continue;
                    }
                    // Destination attribute of the send at rank p.
                    let dest_ok = match resolve(dest, p, n, params, s_env) {
                        Resolved::Exactly(v) => v == q,
                        Resolved::AnyRank => true,
                        Resolved::OutOfRange => false,
                    };
                    if !dest_ok {
                        continue;
                    }
                    // Source attribute of the receive at rank q.
                    let src_ok = match src {
                        RecvSrc::Any => true,
                        RecvSrc::Rank(e) => match resolve(e, q, n, params, r_env) {
                            Resolved::Exactly(v) => v == p,
                            Resolved::AnyRank => true,
                            Resolved::OutOfRange => false,
                        },
                    };
                    if src_ok {
                        found = Some((p, q));
                        break 'search;
                    }
                }
            }
            if let Some(w) = found {
                candidates.push((s, w, recv_irregular || send_irregular));
            }
        }
        if candidates.is_empty() {
            unmatched_recvs.push(r);
            continue;
        }
        let chosen: Vec<(NodeId, (usize, usize), bool)> = match mode {
            MatchingMode::Conservative => candidates,
            MatchingMode::PreferUnmatched => {
                if recv_irregular {
                    // Irregular receives match all candidates (step 3,
                    // first bullet).
                    candidates
                } else {
                    let unmatched: Vec<_> = candidates
                        .iter()
                        .filter(|(s, _, irr)| *irr || !send_matched[s])
                        .cloned()
                        .collect();
                    if unmatched.is_empty() {
                        // Fall back to everything so Lemma 3.1 holds.
                        candidates
                    } else {
                        unmatched
                    }
                }
            }
            MatchingMode::FifoOrdered => {
                unreachable!("handled by match_fifo_ordered")
            }
        };
        for (s, witness, irregular) in chosen {
            send_matched.insert(s, true);
            edges.push(MessageEdge { send: s, recv: r });
            witnesses.push(MatchWitness {
                edge: MessageEdge { send: s, recv: r },
                witness,
                irregular,
            });
        }
    }
    Matching {
        edges,
        witnesses,
        unmatched_recvs,
    }
}

/// Per-channel FIFO sequence matching (see [`MatchingMode::FifoOrdered`]).
fn match_fifo_ordered(cfg: &Cfg, attrs: &NodeAttrs, iddep: &IdDepInfo) -> Matching {
    let n = attrs.nprocs();
    let params = &iddep.params;
    let order = dfs(cfg).preorder;
    let mut sends: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&id| matches!(cfg.node(id).kind, NodeKind::Send { .. }))
        .collect();
    let mut recvs: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&id| matches!(cfg.node(id).kind, NodeKind::Recv { .. }))
        .collect();
    // Program (source) order, not CFG DFS order: a process executes
    // statements in source order along its path.
    sends.sort_by_key(|&id| cfg.node(id).stmt.expect("send nodes carry stmt ids"));
    recvs.sort_by_key(|&id| cfg.node(id).stmt.expect("recv nodes carry stmt ids"));

    let mut edges: Vec<MessageEdge> = Vec::new();
    let mut witnesses: Vec<MatchWitness> = Vec::new();
    let mut seen: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    let push = |edges: &mut Vec<MessageEdge>,
                witnesses: &mut Vec<MatchWitness>,
                seen: &mut std::collections::HashSet<(NodeId, NodeId)>,
                s: NodeId,
                r: NodeId,
                p: usize,
                q: usize,
                irregular: bool| {
        if seen.insert((s, r)) {
            edges.push(MessageEdge { send: s, recv: r });
            witnesses.push(MatchWitness {
                edge: MessageEdge { send: s, recv: r },
                witness: (p, q),
                irregular,
            });
        }
    };

    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            // The channel's send statements at sender rank p, with
            // whether each resolves exactly to q.
            let mut chan_sends: Vec<(NodeId, bool)> = Vec::new();
            for &s in &sends {
                if !attrs.of(s).contains(p) {
                    continue;
                }
                let NodeKind::Send { dest, .. } = &cfg.node(s).kind else {
                    unreachable!()
                };
                match resolve(dest, p, n, params, iddep.env_at(s)) {
                    Resolved::Exactly(v) if v == q => chan_sends.push((s, true)),
                    Resolved::AnyRank => chan_sends.push((s, false)),
                    _ => {}
                }
            }
            let mut chan_recvs: Vec<(NodeId, bool)> = Vec::new();
            for &r in &recvs {
                if !attrs.of(r).contains(q) {
                    continue;
                }
                let NodeKind::Recv { src } = &cfg.node(r).kind else {
                    unreachable!()
                };
                match src {
                    RecvSrc::Any => chan_recvs.push((r, false)),
                    RecvSrc::Rank(e) => match resolve(e, q, n, params, iddep.env_at(r)) {
                        Resolved::Exactly(v) if v == p => chan_recvs.push((r, true)),
                        Resolved::AnyRank => chan_recvs.push((r, false)),
                        _ => {}
                    },
                }
            }
            if chan_sends.is_empty() || chan_recvs.is_empty() {
                continue;
            }
            let all_exact =
                chan_sends.iter().all(|&(_, e)| e) && chan_recvs.iter().all(|&(_, e)| e);
            if all_exact && chan_sends.len() == chan_recvs.len() {
                // FIFO positional pairing.
                for (&(s, _), &(r, _)) in chan_sends.iter().zip(&chan_recvs) {
                    push(&mut edges, &mut witnesses, &mut seen, s, r, p, q, false);
                }
            } else {
                // Irregular membership or count mismatch: all pairs
                // (Lemma 3.1 fallback).
                for &(s, se) in &chan_sends {
                    for &(r, re) in &chan_recvs {
                        push(
                            &mut edges,
                            &mut witnesses,
                            &mut seen,
                            s,
                            r,
                            p,
                            q,
                            !(se && re),
                        );
                    }
                }
            }
        }
    }
    let matched: std::collections::HashSet<NodeId> = edges.iter().map(|e| e.recv).collect();
    let unmatched_recvs = recvs
        .iter()
        .copied()
        .filter(|r| !matched.contains(r))
        .collect();
    Matching {
        edges,
        witnesses,
        unmatched_recvs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::compute_attrs;
    use crate::iddep::analyze_iddep;
    use acfc_cfg::build_cfg;
    use acfc_mpsl::parse;

    fn matched(src: &str, n: usize, mode: MatchingMode) -> (acfc_cfg::Cfg, Matching) {
        let p = parse(src).unwrap();
        let (cfg, lowered) = build_cfg(&p);
        let iddep = analyze_iddep(&cfg, &lowered);
        let attrs = compute_attrs(&cfg, n, &iddep);
        let m = match_send_recv(&cfg, &attrs, &iddep, mode);
        (cfg, m)
    }

    #[test]
    fn simple_pair_matches() {
        let (cfg, m) = matched(
            "program t;
             if rank == 0 { send to 1; } else { recv from 0; }",
            2,
            MatchingMode::Conservative,
        );
        assert_eq!(m.edges.len(), 1);
        assert_eq!(m.edges[0].send, cfg.send_nodes()[0]);
        assert_eq!(m.edges[0].recv, cfg.recv_nodes()[0]);
        assert_eq!(m.witnesses[0].witness, (0, 1));
        assert!(m.unmatched_recvs.is_empty());
    }

    #[test]
    fn contradicting_parameters_do_not_match() {
        // The recv names source 2, but the send targets rank 1.
        let (_, m) = matched(
            "program t;
             if rank == 0 { send to 1; } else { recv from 2; }",
            4,
            MatchingMode::Conservative,
        );
        assert!(m.edges.is_empty());
        assert_eq!(m.unmatched_recvs.len(), 1);
    }

    #[test]
    fn self_messages_never_match() {
        // dest == source rank for every rank: p == q always.
        let (_, m) = matched(
            "program t; send to rank; recv from rank;",
            4,
            MatchingMode::Conservative,
        );
        assert!(m.edges.is_empty());
    }

    #[test]
    fn jacobi_ring_matches_neighbours() {
        // Uniform Jacobi: sends to both neighbours, recvs from both.
        let (cfg, m) = matched(
            "program t; var i;
             for i in 0..3 {
               send to (rank + 1) % nprocs;
               send to (rank - 1) % nprocs;
               recv from (rank - 1) % nprocs;
               recv from (rank + 1) % nprocs;
             }",
            4,
            MatchingMode::Conservative,
        );
        // Each recv matches exactly the one compatible send.
        assert_eq!(m.edges.len(), 2, "{:?}", m.edges);
        let sends = cfg.send_nodes();
        let recvs = cfg.recv_nodes();
        // send-to-right matches recv-from-left and vice versa.
        assert!(m.edges.contains(&MessageEdge {
            send: sends[0],
            recv: recvs[0]
        }));
        assert!(m.edges.contains(&MessageEdge {
            send: sends[1],
            recv: recvs[1]
        }));
    }

    #[test]
    fn recv_any_matches_all_sends() {
        let (_, m) = matched(
            "program t;
             if rank == 0 { recv from any; recv from any; } else { send to 0; }",
            3,
            MatchingMode::Conservative,
        );
        // Both `recv from any` match the one send node.
        assert_eq!(m.edges.len(), 2);
        assert!(m.witnesses.iter().all(|w| w.irregular));
    }

    #[test]
    fn irregular_send_matches_conservatively() {
        let (_, m) = matched(
            "program t;
             if rank == 0 { send to 1 + input(0); } else { recv from 0; }",
            4,
            MatchingMode::Conservative,
        );
        assert_eq!(m.edges.len(), 1);
        assert!(m.witnesses[0].irregular);
    }

    #[test]
    fn prefer_unmatched_limits_regular_fanout() {
        // Two identical regular sends, two identical regular recvs.
        let src = "program t;
             if rank == 0 { send to 1; send to 1; } else {
               if rank == 1 { recv from 0; recv from 0; } }";
        let (_, conservative) = matched(src, 2, MatchingMode::Conservative);
        let (_, prefer) = matched(src, 2, MatchingMode::PreferUnmatched);
        // Conservative: all 4 pairs. PreferUnmatched: first recv takes
        // both unmatched sends? No: it matches all unmatched candidates
        // (2), then the second recv falls back to matched ones (2).
        assert_eq!(conservative.edges.len(), 4);
        assert!(prefer.edges.len() <= conservative.edges.len());
        // Lemma 3.1: every recv retains at least one match.
        assert!(prefer.unmatched_recvs.is_empty());
    }

    #[test]
    fn fig4_odd_even_jacobi_cross_matches() {
        // Figure 4: even sends match odd recvs and vice versa (plus
        // even-even / odd-odd neighbour pairs where they exist at n=4:
        // with ring neighbours, parity alternates, so matches are
        // strictly cross-parity).
        let p = acfc_mpsl::programs::jacobi_odd_even(2);
        let (cfg, lowered) = build_cfg(&p);
        let iddep = analyze_iddep(&cfg, &lowered);
        let attrs = compute_attrs(&cfg, 4, &iddep);
        let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::Conservative);
        assert!(!m.edges.is_empty());
        assert!(m.unmatched_recvs.is_empty());
        // Every edge crosses the parity branch: the send and recv are in
        // different arms of the odd/even if.
        for e in &m.edges {
            let s_even = attrs.of(e.send).contains(0);
            let r_even = attrs.of(e.recv).contains(0);
            assert_ne!(s_even, r_even, "edge {:?} does not cross parity arms", e);
        }
    }

    #[test]
    fn out_of_range_destination_never_matches() {
        let (_, m) = matched(
            "program t;
             if rank == 0 { send to nprocs + 5; } else { recv from 0; }",
            3,
            MatchingMode::Conservative,
        );
        assert!(m.edges.is_empty());
    }
}
