//! Golden tests: the exact transformed programs Phase III produces for
//! the paper's examples. These pin the *placement decisions*, not just
//! the safety property, so a regression in Algorithm 3.2's chain walk
//! or in equalisation shows up as a readable diff.

use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::{programs, to_source};

fn transformed(p: &acfc_mpsl::Program) -> String {
    to_source(
        &analyze(p, &AnalysisConfig::for_nprocs(8))
            .unwrap_or_else(|e| panic!("{}: {e}", p.name))
            .program,
    )
}

#[test]
fn golden_jacobi_unchanged() {
    let p = programs::jacobi(10);
    assert_eq!(transformed(&p), to_source(&p), "Figure 1 needs no change");
}

#[test]
fn golden_jacobi_odd_even() {
    let got = transformed(&programs::jacobi_odd_even(10));
    let want = "\
program jacobi_odd_even;
param iters = 10;
var i;
for i in 0..iters {
  compute 50;
  if rank % 2 == 0 {
    checkpoint \"even\";
    send to (rank + 1) % nprocs size 4096;
    send to (rank - 1) % nprocs size 4096;
    recv from (rank - 1) % nprocs;
    recv from (rank + 1) % nprocs;
  } else {
    send to (rank + 1) % nprocs size 4096;
    send to (rank - 1) % nprocs size 4096;
    checkpoint \"odd\";
    recv from (rank - 1) % nprocs;
    recv from (rank + 1) % nprocs;
  }
}
";
    assert_eq!(got, want);
}

#[test]
fn golden_fig5() {
    let got = transformed(&programs::fig5());
    let want = "\
program fig5;
compute 10;
if rank % 2 == 0 {
  checkpoint \"A\";
  send to rank + 1 size 512;
} else {
  checkpoint \"B\";
  recv from rank - 1;
}
compute 10;
";
    assert_eq!(got, want);
}

#[test]
fn golden_fig6_hoists_a_out_of_the_loop() {
    let got = transformed(&programs::fig6(5));
    // Checkpoint A leaves the loop (the paper's noted consequence);
    // checkpoint B stays put.
    let before_loop = got.find("checkpoint \"A\"").expect("A present");
    let loop_start = got.find("for i in").expect("loop present");
    assert!(
        before_loop < loop_start,
        "A must be hoisted before the loop:\n{got}"
    );
    assert!(got.contains("checkpoint \"B\""));
}

#[test]
fn golden_pipeline_skewed_moves_tail_before_recv() {
    let got = transformed(&programs::pipeline_skewed(8));
    let want = "\
program pipeline_skewed;
param iters = 8;
var i;
for i in 0..iters {
  if rank == 0 {
    checkpoint \"head\";
    compute 40;
    send to rank + 1 size 2048;
  } else {
    checkpoint \"tail\";
    recv from rank - 1;
    compute 40;
    if rank < nprocs - 1 {
      send to rank + 1 size 2048;
    }
  }
}
";
    assert_eq!(got, want);
}

#[test]
fn golden_pingpong_skewed() {
    let got = transformed(&programs::pingpong_skewed(8));
    // Rank 1's checkpoint must precede its recv; rank 0's placement
    // stays before the serve.
    let r1_recv = got.find("recv from 0").unwrap();
    let r1_ckpt = got.find("checkpoint \"after-return\"").unwrap();
    assert!(
        r1_ckpt < r1_recv,
        "rank 1 must checkpoint before receiving:\n{got}"
    );
}

#[test]
fn golden_transformations_are_deterministic() {
    for p in programs::all_stock() {
        let a = transformed(&p);
        let b = transformed(&p);
        assert_eq!(a, b, "{} transformation must be deterministic", p.name);
    }
}
