//! Property tests for Phase I: equalisation always produces exact
//! per-path checkpoint counts, rebalancing preserves balance while
//! never *adding* more than it had to, and insertion never touches a
//! program that already has checkpoints.

use acfc_core::phase1::{
    equalize_checkpoints, insert_checkpoints, rebalance_checkpoints, static_count, InsertionConfig,
};
use acfc_mpsl::{Expr, Program, RecvSrc, Stmt, StmtKind};
use acfc_util::check::{forall, Gen};

fn arb_stmt(g: &mut Gen, depth: u32) -> Stmt {
    let leaf = |g: &mut Gen| match g.usize_in(0, 4) {
        0 => Stmt::new(StmtKind::Compute { cost: Expr::Int(1) }),
        1 => Stmt::new(StmtKind::Checkpoint { label: None }),
        2 => Stmt::new(StmtKind::Send {
            dest: Expr::Int(0),
            size_bits: Expr::Int(8),
        }),
        _ => Stmt::new(StmtKind::Recv { src: RecvSrc::Any }),
    };
    if depth == 0 || g.prob(0.4) {
        return leaf(g);
    }
    if g.bool() {
        Stmt::new(StmtKind::If {
            cond: Expr::Rank,
            then_branch: g.vec_of(0, 4, |g| arb_stmt(g, depth - 1)),
            else_branch: g.vec_of(0, 4, |g| arb_stmt(g, depth - 1)),
        })
    } else {
        Stmt::new(StmtKind::For {
            var: "i".into(),
            from: Expr::Int(0),
            to: Expr::Int(2),
            body: g.vec_of(1, 4, |g| arb_stmt(g, depth - 1)),
        })
    }
}

fn arb_program(g: &mut Gen) -> Program {
    Program::new(
        "p1",
        vec![],
        vec!["i".into()],
        g.vec_of(0, 6, |g| arb_stmt(g, 3)),
    )
}

#[test]
fn equalize_makes_counts_exact() {
    forall("equalize_makes_counts_exact", 256, |g| {
        let mut p = arb_program(g);
        equalize_checkpoints(&mut p);
        let (min, max) = static_count(&p.body);
        assert_eq!(min, max);
    });
}

#[test]
fn equalize_is_idempotent() {
    forall("equalize_is_idempotent", 256, |g| {
        let mut p = arb_program(g);
        equalize_checkpoints(&mut p);
        let snapshot = p.clone();
        let added = equalize_checkpoints(&mut p);
        assert_eq!(added, 0);
        assert_eq!(p, snapshot);
    });
}

#[test]
fn equalize_only_adds() {
    forall("equalize_only_adds", 256, |g| {
        let mut p = arb_program(g);
        let before = p.checkpoint_ids().len();
        let added = equalize_checkpoints(&mut p);
        assert_eq!(p.checkpoint_ids().len(), before + added);
    });
}

#[test]
fn rebalance_makes_counts_exact_without_net_growth() {
    forall(
        "rebalance_makes_counts_exact_without_net_growth",
        256,
        |g| {
            let mut p = arb_program(g);
            let before = p.checkpoint_ids().len();
            let (removed, added) = rebalance_checkpoints(&mut p);
            let (min, max) = static_count(&p.body);
            assert_eq!(min, max);
            assert_eq!(p.checkpoint_ids().len(), before - removed + added);
        },
    );
}

#[test]
fn insertion_leaves_checkpointed_programs_alone() {
    forall("insertion_leaves_checkpointed_programs_alone", 256, |g| {
        let mut p = arb_program(g);
        if p.checkpoint_ids().is_empty() {
            return;
        }
        let before = p.clone();
        let rep = insert_checkpoints(&mut p, &InsertionConfig::default());
        assert_eq!(rep.inserted, 0);
        assert_eq!(p, before);
    });
}
