//! Property tests for Phase I: equalisation always produces exact
//! per-path checkpoint counts, rebalancing preserves balance while
//! never *adding* more than it had to, and insertion never touches a
//! program that already has checkpoints.

use acfc_core::phase1::{
    equalize_checkpoints, insert_checkpoints, rebalance_checkpoints, static_count,
    InsertionConfig,
};
use acfc_mpsl::{Expr, Program, RecvSrc, Stmt, StmtKind};
use proptest::prelude::*;

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::new(StmtKind::Compute { cost: Expr::Int(1) })),
        Just(Stmt::new(StmtKind::Checkpoint { label: None })),
        Just(Stmt::new(StmtKind::Send {
            dest: Expr::Int(0),
            size_bits: Expr::Int(8)
        })),
        Just(Stmt::new(StmtKind::Recv {
            src: RecvSrc::Any
        })),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            (
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(t, e)| Stmt::new(StmtKind::If {
                    cond: Expr::Rank,
                    then_branch: t,
                    else_branch: e
                })),
            prop::collection::vec(inner, 1..4).prop_map(|body| Stmt::new(StmtKind::For {
                var: "i".into(),
                from: Expr::Int(0),
                to: Expr::Int(2),
                body
            })),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 0..6)
        .prop_map(|body| Program::new("p1", vec![], vec!["i".into()], body))
}

proptest! {
    #[test]
    fn equalize_makes_counts_exact(mut p in arb_program()) {
        equalize_checkpoints(&mut p);
        let (min, max) = static_count(&p.body);
        prop_assert_eq!(min, max);
    }

    #[test]
    fn equalize_is_idempotent(mut p in arb_program()) {
        equalize_checkpoints(&mut p);
        let snapshot = p.clone();
        let added = equalize_checkpoints(&mut p);
        prop_assert_eq!(added, 0);
        prop_assert_eq!(p, snapshot);
    }

    #[test]
    fn equalize_only_adds(mut p in arb_program()) {
        let before = p.checkpoint_ids().len();
        let added = equalize_checkpoints(&mut p);
        prop_assert_eq!(p.checkpoint_ids().len(), before + added);
    }

    #[test]
    fn rebalance_makes_counts_exact_without_net_growth(mut p in arb_program()) {
        let before = p.checkpoint_ids().len();
        let (removed, added) = rebalance_checkpoints(&mut p);
        let (min, max) = static_count(&p.body);
        prop_assert_eq!(min, max);
        prop_assert_eq!(p.checkpoint_ids().len(), before - removed + added);
    }

    #[test]
    fn insertion_leaves_checkpointed_programs_alone(mut p in arb_program()) {
        prop_assume!(!p.checkpoint_ids().is_empty());
        let before = p.clone();
        let rep = insert_checkpoints(&mut p, &InsertionConfig::default());
        prop_assert_eq!(rep.inserted, 0);
        prop_assert_eq!(p, before);
    }
}
