//! The pre-optimization Phase III hot path, preserved for benchmarking.
//!
//! This module reproduces, against today's public APIs, the analysis
//! loop as it stood before the performance pass, so `perf_json` can
//! report a measured before/after on the same workloads:
//!
//! * every iteration re-lowers and rebuilds the CFG from a **clone** of
//!   the program (no [`acfc_cfg::build_cfg_prelowered`]);
//! * Phase II (ID-dependence, attributes, Algorithm 3.1 matching) is
//!   recomputed from scratch every iteration (no
//!   [`acfc_core::ReanalysisCache`]);
//! * reachability closures use the per-node BFS build
//!   ([`acfc_cfg::Reach::compute_naive`], the old `Reach::compute`);
//! * Condition 1's message-crossing probes scan every message edge per
//!   query (no per-checkpoint message-reach rows).
//!
//! The relocation logic (Algorithm 3.2 proper) is byte-for-byte the
//! same decision procedure, so both implementations walk the identical
//! move trajectory; only the per-iteration analysis cost differs.

use acfc_cfg::{
    build_cfg, dominators, find_path, loop_info, Cfg, LoopInfo, NodeId, NodeKind, Reach,
};
use acfc_core::{
    analyze_iddep, compute_attrs, index_checkpoints, match_send_recv, rebalance_checkpoints,
    CheckpointIndex, LoopPolicy, MessageEdge, Phase3Config,
};
use acfc_mpsl::{Block, Program, Stmt, StmtId, StmtKind};

/// The seed's extended CFG: naive-BFS closures, no message-reach rows.
struct SeedExtended {
    cfg: Cfg,
    message_edges: Vec<MessageEdge>,
    loops: LoopInfo,
    reach_full: Reach,
    reach_forward: Reach,
}

impl SeedExtended {
    fn build(cfg: Cfg, edges: Vec<MessageEdge>) -> SeedExtended {
        let loops = loop_info(&cfg);
        let n = cfg.len();
        let mut full: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut forward: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b, _) in cfg.edges() {
            full[a.index()].push(b.index());
            if !loops.is_back_edge(a, b) {
                forward[a.index()].push(b.index());
            }
        }
        for e in &edges {
            full[e.send.index()].push(e.recv.index());
            forward[e.send.index()].push(e.recv.index());
        }
        let reach_full = Reach::compute_naive(&full);
        let reach_forward = Reach::compute_naive(&forward);
        SeedExtended {
            cfg,
            message_edges: edges,
            loops,
            reach_full,
            reach_forward,
        }
    }

    fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        self.reach_full.reachable(a.index(), b.index())
    }

    fn reaches_forward(&self, a: NodeId, b: NodeId) -> bool {
        self.reach_forward.reachable(a.index(), b.index())
    }

    fn reaches_via_message(&self, a: NodeId, b: NodeId) -> bool {
        self.message_edges.iter().any(|e| {
            self.reach_full.reachable_or_eq(a.index(), e.send.index())
                && self.reach_full.reachable_or_eq(e.recv.index(), b.index())
        })
    }

    fn reaches_forward_via_message(&self, a: NodeId, b: NodeId) -> bool {
        self.message_edges.iter().any(|e| {
            self.reach_forward
                .reachable_or_eq(a.index(), e.send.index())
                && self
                    .reach_forward
                    .reachable_or_eq(e.recv.index(), b.index())
        })
    }

    fn adjacency_full(&self) -> Vec<Vec<usize>> {
        let n = self.cfg.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b, _) in self.cfg.edges() {
            adj[a.index()].push(b.index());
        }
        for e in &self.message_edges {
            adj[e.send.index()].push(e.recv.index());
        }
        adj
    }
}

struct SeedViolation {
    from: NodeId,
    to: NodeId,
    index: u32,
    only_via_back_edge: bool,
}

fn check_condition1(
    g: &SeedExtended,
    index: &CheckpointIndex,
    policy: LoopPolicy,
) -> Vec<SeedViolation> {
    let mut out = Vec::new();
    let adj_full = g.adjacency_full();
    for (a, b) in index.same_index_pairs() {
        for (from, to) in [(a, b), (b, a)] {
            if !g.reaches_via_message(from, to) {
                continue;
            }
            let forward = g.reaches_forward_via_message(from, to);
            let violation = match policy {
                LoopPolicy::Strict => true,
                LoopPolicy::Optimized => forward || !(g.loops.in_loop(from) && g.loops.in_loop(to)),
            };
            if !violation {
                continue;
            }
            let shared = index.ranges[&from].min.max(index.ranges[&to].min);
            // The seed computed a witness path for diagnostics on every
            // violation; keep the cost in the measurement.
            let _witness = find_path(&adj_full, from.index(), to.index(), &|_, _| true);
            out.push(SeedViolation {
                from,
                to,
                index: shared,
                only_via_back_edge: !forward,
            });
        }
    }
    out
}

/// The seed's `ensure_recovery_lines`: full rebuild + full Phase II +
/// naive closures every iteration. Returns the repaired program and the
/// number of moves, or `None` when the cap is hit (never on the
/// workloads perf_json uses).
pub fn seed_ensure_recovery_lines(
    program: &Program,
    config: &Phase3Config,
) -> Option<(Program, usize)> {
    let mut current = program.clone();
    if current.has_collectives() {
        current.lower_collectives();
    }
    for (moves, _) in (0..config.max_iterations).enumerate() {
        let (cfg, lowered) = build_cfg(&current);
        let iddep = analyze_iddep(&cfg, &lowered);
        let attrs = compute_attrs(&cfg, config.nprocs, &iddep);
        let matching = match_send_recv(&cfg, &attrs, &iddep, config.matching);
        let index = index_checkpoints(&cfg, &lowered);
        let extended = SeedExtended::build(cfg, matching.edges);
        let violations = check_condition1(&extended, &index, config.policy);
        let Some(v) = pick_violation(&violations) else {
            return Some((current, moves));
        };
        if !apply_move(&mut current, &extended, v, config) {
            return None;
        }
        rebalance_checkpoints(&mut current);
    }
    None
}

fn pick_violation(violations: &[SeedViolation]) -> Option<&SeedViolation> {
    violations.iter().min_by_key(|v| (v.index, v.to, v.from))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum InsertPoint {
    Before(StmtId),
    After(StmtId),
    ProgramStart,
}

fn apply_move(
    program: &mut Program,
    g: &SeedExtended,
    v: &SeedViolation,
    config: &Phase3Config,
) -> bool {
    let dom = dominators(&g.cfg);
    let chain = dom.chain(v.to);
    if chain.is_empty() {
        return false;
    }
    let reaches = |node: NodeId| -> bool {
        if config.policy == LoopPolicy::Optimized && !v.only_via_back_edge {
            g.reaches_forward(v.from, node)
        } else {
            g.reaches(v.from, node)
        }
    };
    let first_reachable = chain
        .iter()
        .position(|&n| reaches(n))
        .unwrap_or(chain.len() - 1);
    for j in (1..=first_reachable).rev() {
        let b = chain[j];
        if b == v.to {
            continue;
        }
        let Some(point) = insert_point_for(g, b) else {
            continue;
        };
        if relocate(program, g, v.to, point) == Some(true) {
            return true;
        }
    }
    relocate(program, g, v.to, InsertPoint::ProgramStart) == Some(true)
}

fn insert_point_for(g: &SeedExtended, b: NodeId) -> Option<InsertPoint> {
    match (&g.cfg.node(b).kind, g.cfg.node(b).stmt) {
        (NodeKind::Entry, _) => Some(InsertPoint::ProgramStart),
        (NodeKind::Exit, _) => None,
        (NodeKind::Join, Some(sid)) => Some(InsertPoint::After(sid)),
        (NodeKind::Join, None) => None,
        (_, Some(sid)) => Some(InsertPoint::Before(sid)),
        (_, None) => None,
    }
}

fn relocate(
    program: &mut Program,
    g: &SeedExtended,
    node: NodeId,
    point: InsertPoint,
) -> Option<bool> {
    let sid = g.cfg.node(node).stmt?;
    match point {
        InsertPoint::Before(t) | InsertPoint::After(t) if t == sid => return Some(false),
        _ => {}
    }
    let removed = remove_stmt(&mut program.body, sid)?;
    if !matches!(removed.kind, StmtKind::Checkpoint { .. }) {
        return None;
    }
    let ok = match point {
        InsertPoint::Before(t) => insert_rel(&mut program.body, t, removed, false),
        InsertPoint::After(t) => insert_rel(&mut program.body, t, removed, true),
        InsertPoint::ProgramStart => {
            program.body.insert(0, removed);
            true
        }
    };
    if !ok {
        return None;
    }
    program.renumber();
    Some(true)
}

fn remove_stmt(block: &mut Block, id: StmtId) -> Option<Stmt> {
    if let Some(pos) = block.iter().position(|s| s.id == id) {
        return Some(block.remove(pos));
    }
    for s in block.iter_mut() {
        let found = match &mut s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => remove_stmt(then_branch, id).or_else(|| remove_stmt(else_branch, id)),
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => remove_stmt(body, id),
            _ => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

fn insert_rel(block: &mut Block, target: StmtId, stmt: Stmt, after: bool) -> bool {
    if let Some(pos) = block.iter().position(|s| s.id == target) {
        block.insert(if after { pos + 1 } else { pos }, stmt);
        return true;
    }
    for s in block.iter_mut() {
        let inner = match &mut s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if insert_rel(then_branch, target, stmt.clone(), after) {
                    true
                } else {
                    insert_rel(else_branch, target, stmt.clone(), after)
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                insert_rel(body, target, stmt.clone(), after)
            }
            _ => false,
        };
        if inner {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_core::ensure_recovery_lines;
    use acfc_mpsl::{programs, to_source};

    #[test]
    fn baseline_walks_the_same_trajectory_as_the_optimized_path() {
        for p in [
            programs::jacobi_odd_even(4),
            programs::pipeline_skewed(4),
            programs::pingpong_skewed(4),
            programs::fig5(),
            programs::fig6(4),
        ] {
            let config = Phase3Config {
                nprocs: 8,
                ..Phase3Config::default()
            };
            let (seed_prog, seed_moves) =
                seed_ensure_recovery_lines(&p, &config).expect("seed baseline repairs");
            let current = ensure_recovery_lines(&p, &config).expect("optimized path repairs");
            assert_eq!(seed_moves, current.moves.len(), "{}", p.name);
            assert_eq!(
                to_source(&seed_prog),
                to_source(&current.program),
                "{}: trajectories diverge",
                p.name
            );
        }
    }
}
