//! Emits `BENCH_analysis.json` and `BENCH_sim.json`: the
//! perf-trajectory numbers this repo tracks across PRs.
//!
//! `BENCH_analysis.json` has three families of measurements:
//!
//! * **Pipeline wall-time** — end-to-end [`acfc_core::analyze`] over
//!   the stock workloads (the paper's entire offline cost).
//! * **Phase III throughput** — Algorithm 3.2 relocations per second on
//!   the repair-heavy workloads, with the [`ReanalysisCache`] replay
//!   enabled vs. recomputing Phase II from scratch every iteration, and
//!   against [`acfc_bench::seed_baseline`] (the pre-optimization hot
//!   path: per-iteration clone + rebuild, naive-BFS closures, per-edge
//!   Condition-1 scans) on the same move trajectory.
//! * **Monte-Carlo throughput** — §4 interval-simulation trials per
//!   second at one thread and at the configured thread count
//!   (`ACFC_THREADS` overrides), plus the implied speedup.
//!
//! `BENCH_sim.json` tracks the discrete-event engine: events per second
//! (executed simulator instructions / wall-clock) on the canonical
//! workloads from `benches/simulator.rs` — clean runs plus the
//! failure/rollback path — for today's lowered-bytecode engine and for
//! [`acfc_bench::sim_baseline`] (the pre-lowering engine: tree-walking
//! expression evaluation over string-keyed maps, per-step instruction
//! clones), plus the implied speedups. Both engines produce
//! byte-identical golden traces, so the event counts are the same and
//! the ratio is a pure interpretation-cost comparison.
//!
//! Run via `cargo bench-json` (alias in `.cargo/config.toml`); the
//! files are written to the current directory.
//!
//! [`ReanalysisCache`]: acfc_core::ReanalysisCache

use acfc_bench::seed_baseline::seed_ensure_recovery_lines;
use acfc_bench::sim_baseline;
use acfc_core::{analyze, ensure_recovery_lines, AnalysisConfig, Phase3Config};
use acfc_mpsl::programs;
use acfc_perfmodel::{simulate_interval_threads, IntervalParams};
use acfc_protocols::{run_sweep, CollectSink, SweepPlan};
use acfc_sim::{compile, CutPicker, FailurePlan, NoHooks, SimConfig, SimObs, SimTime};
use acfc_util::bench::{bench, Json};
use acfc_util::parallel::configured_threads;
use std::hint::black_box;

/// Workloads whose placements Phase III actually has to repair (moves
/// are performed, so the incremental replay has iterations to save).
fn repair_heavy() -> Vec<acfc_mpsl::Program> {
    vec![
        programs::jacobi_odd_even(10),
        programs::pipeline_skewed(10),
        programs::pingpong_skewed(10),
        programs::fig6(10),
    ]
}

/// A Phase-III-heavy workload: `m` sequential odd/even exchange blocks,
/// each with the Figure 5 misplacement, so Algorithm 3.2 performs `m`
/// relocations (one iteration each) before the fixpoint.
fn many_exchanges(m: usize) -> acfc_mpsl::Program {
    let mut src = String::from("program many_exchanges;\n");
    for _ in 0..m {
        src.push_str(
            "if rank % 2 == 0 { checkpoint; send to rank + 1; recv from rank + 1; }\n\
             else { recv from rank - 1; checkpoint; send to rank - 1; }\n",
        );
    }
    acfc_mpsl::parse(&src).expect("workload parses")
}

fn phase3_stats(incremental: bool) -> (f64, f64) {
    let workloads = repair_heavy();
    let config = Phase3Config {
        nprocs: 8,
        incremental,
        ..Phase3Config::default()
    };
    let mut moves = 0usize;
    for p in &workloads {
        moves += ensure_recovery_lines(p, &config)
            .expect("repairable workload")
            .moves
            .len();
    }
    let s = bench(
        if incremental {
            "phase3/incremental"
        } else {
            "phase3/from_scratch"
        },
        400,
        || {
            for p in &workloads {
                black_box(ensure_recovery_lines(black_box(p), &config).unwrap());
            }
        },
    );
    let secs_per_pass = s.median_ns / 1e9;
    (moves as f64 / secs_per_pass, secs_per_pass)
}

/// Benchmarks one simulator workload on both engines and returns
/// `(events_per_run, baseline_events_per_sec, lowered_events_per_sec)`.
fn sim_workload(
    name: &str,
    program: &acfc_mpsl::Program,
    nprocs: usize,
    failures: &[(SimTime, usize)],
) -> (u64, f64, f64) {
    let compiled = compile(program);
    let cfg = SimConfig::new(nprocs);
    let plan = FailurePlan::at(failures.to_vec());
    let run_lowered = || {
        if failures.is_empty() {
            acfc_sim::run(&compiled, &cfg)
        } else {
            let mut hooks = NoHooks;
            acfc_sim::run_with_failures(
                &compiled,
                &cfg,
                &mut hooks,
                plan.clone(),
                CutPicker::AlignedSeq,
            )
        }
    };
    let run_baseline = || {
        if failures.is_empty() {
            sim_baseline::run(&compiled, &cfg)
        } else {
            let mut hooks = NoHooks;
            sim_baseline::run_with_failures(
                &compiled,
                &cfg,
                &mut hooks,
                plan.clone(),
                CutPicker::AlignedSeq,
            )
        }
    };
    let events = run_lowered().metrics.instructions;
    assert_eq!(
        events,
        run_baseline().metrics.instructions,
        "engines diverged on {name}"
    );
    // Interleaved min-of-batches: the two engines alternate in short
    // batches and each keeps its best batch, so slow drift on a shared
    // box (frequency scaling, noisy neighbours) cancels out of the
    // ratio instead of landing on whichever engine ran second.
    let batch = (200_000 / events).clamp(2, 500) as usize;
    let mut best_lowered = f64::INFINITY;
    let mut best_baseline = f64::INFINITY;
    for _ in 0..12 {
        let t = std::time::Instant::now();
        for _ in 0..batch {
            black_box(run_lowered());
        }
        best_lowered = best_lowered.min(t.elapsed().as_nanos() as f64 / batch as f64);
        let t = std::time::Instant::now();
        for _ in 0..batch {
            black_box(run_baseline());
        }
        best_baseline = best_baseline.min(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    let per_sec = |ns_per_run: f64| events as f64 / (ns_per_run / 1e9);
    (events, per_sec(best_baseline), per_sec(best_lowered))
}

/// Events/sec of the lowered engine alone on one large-`n` workload:
/// one warm run to learn the event count, then the best of `reps` timed
/// runs. Single timed runs rather than interleaved batches — at these
/// sizes a run is tens to hundreds of milliseconds, far above timer
/// quantization, and there is no second engine in the ratio to drift
/// against.
fn large_n_events_per_sec(program: &acfc_mpsl::Program, nprocs: usize, reps: usize) -> (u64, f64) {
    let compiled = compile(program);
    let cfg = SimConfig::new(nprocs);
    let trace = acfc_sim::run(&compiled, &cfg);
    assert!(
        trace.completed(),
        "large-n workload failed: {:?}",
        trace.outcome
    );
    let events = trace.metrics.instructions;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        black_box(acfc_sim::run(&compiled, &cfg));
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    (events, events as f64 / (best / 1e9))
}

/// Measures what the per-run [`SimObs`] collector costs on `jacobi_n8`:
/// observed (counters mode) vs unobserved runs. The unobserved path —
/// the default in every bench and CLI run — pays only a never-taken
/// `Option` branch per probe, so this fully-enabled delta is a
/// conservative upper bound on the cost of instrumentation when
/// disabled.
///
/// Each sample times one plain run and one observed run back to back,
/// and the estimate is the *median of the per-pair ratios*. Adjacent
/// runs share the same frequency/thermal state, so each ratio cancels
/// the drift that wrecks independent-min estimators on a noisy shared
/// host: min(observed)/min(plain) picks its two minima from different
/// quiet windows and was observed to swing 1–8% run to run here, while
/// the paired median reproduces to a few tenths of a percent. The run
/// itself must also be long enough that the 2% budget sits well above
/// timer quantization — jacobi(200) (~2ms, budget ~40µs) rather than
/// jacobi(20) (~100µs, budget under 2µs). The whole measurement is
/// repeated three times and the best (smallest) median wins: a window
/// of sustained interference inflates every pair in it, and the repeat
/// is how we find a window without one.
///
/// The same estimator runs at two scales: `jacobi(200)` at n = 8 (the
/// historical `obs_overhead_pct` key) and `jacobi(6)` at n = 1024
/// (`obs_overhead_n1024_pct`), because the collector's relative cost
/// could regress differently where per-event cache misses dominate.
fn obs_overhead_pct(program: &acfc_mpsl::Program, nprocs: usize, samples: usize) -> f64 {
    let compiled = compile(program);
    let cfg = SimConfig::new(nprocs);
    let median_pct = || {
        let mut ratios = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = std::time::Instant::now();
            black_box(acfc_sim::run(&compiled, &cfg));
            let plain = t.elapsed().as_nanos();
            let mut obs = SimObs::counters();
            let t = std::time::Instant::now();
            black_box(acfc_sim::run_observed(&compiled, &cfg, &mut obs));
            let observed = t.elapsed().as_nanos();
            ratios.push(observed as f64 / plain as f64);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        (ratios[ratios.len() / 2] - 1.0) * 100.0
    };
    (0..3).map(|_| median_pct()).fold(f64::INFINITY, f64::min)
}

/// The flamegraph-export path's end-to-end cost on the same
/// paired-median estimator: a runtime-enabled run whose wall spans are
/// drained and collapsed into folded lines, against a plain disabled
/// run. The engine's span probes are deliberately coarse (per run
/// phase, never per event), so capture **plus** collapse must fit the
/// same 2% budget as the SimObs collector.
fn obs_folded_overhead_pct(program: &acfc_mpsl::Program, nprocs: usize, samples: usize) -> f64 {
    let compiled = compile(program);
    let cfg = SimConfig::new(nprocs);
    let median_pct = || {
        let mut ratios = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = std::time::Instant::now();
            black_box(acfc_sim::run(&compiled, &cfg));
            let plain = t.elapsed().as_nanos();
            let t = std::time::Instant::now();
            acfc_obs::set_enabled(true);
            black_box(acfc_sim::run(&compiled, &cfg));
            acfc_obs::set_enabled(false);
            let spans = acfc_obs::take_wall_spans();
            black_box(acfc_obs::folded_lines(&spans, &acfc_obs::thread_labels()));
            let folded = t.elapsed().as_nanos();
            ratios.push(folded as f64 / plain as f64);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        (ratios[ratios.len() / 2] - 1.0) * 100.0
    };
    (0..3).map(|_| median_pct()).fold(f64::INFINITY, f64::min)
}

/// Emits `BENCH_sim.json`: events/sec for the lowered engine vs the
/// pre-lowering baseline on the `benches/simulator.rs` workloads.
fn emit_bench_sim() {
    type Workload<'a> = (&'a str, acfc_mpsl::Program, usize, &'a [(SimTime, usize)]);
    let fail_plan = [
        (SimTime::from_millis(300), 0),
        (SimTime::from_millis(700), 2),
    ];
    let workloads: [Workload; 4] = [
        ("jacobi_n8", programs::jacobi(20), 8, &[]),
        ("stencil_n16", programs::stencil_1d(20), 16, &[]),
        ("master_worker_n8", programs::master_worker(10), 8, &[]),
        (
            "jacobi_n4_with_failures",
            programs::jacobi(20),
            4,
            &fail_plan,
        ),
    ];
    let mut json = Json::new().str("bench", "sim");
    for (name, program, n, failures) in &workloads {
        let (events, base, lowered) = sim_workload(name, program, *n, failures);
        json = json
            .num(&format!("{name}_events"), events as f64)
            .num(&format!("{name}_baseline_events_per_sec"), base)
            .num(&format!("{name}_events_per_sec"), lowered)
            .num(&format!("{name}_speedup"), lowered / base);
    }
    // Histogram-native percentile bounds from one observed jacobi_n8
    // run (deterministic: fixed seed, no failures) — the trajectory
    // file tracks the engine's latency/queue/interval distributions,
    // not just throughput means.
    let mut obs = SimObs::counters();
    let trace = acfc_sim::run_observed(
        &compile(&programs::jacobi(20)),
        &SimConfig::new(8),
        &mut obs,
    );
    assert!(trace.completed());
    let lat = obs.msg_latency_us.percentiles();
    let qd = obs.queue_depth.percentiles();
    let ci = obs.ckpt_interval_us.percentiles();
    json = json
        .num("jacobi_n8_msg_latency_p50_us", lat.p50 as f64)
        .num("jacobi_n8_msg_latency_p90_us", lat.p90 as f64)
        .num("jacobi_n8_msg_latency_p99_us", lat.p99 as f64)
        .num("jacobi_n8_queue_depth_p50", qd.p50 as f64)
        .num("jacobi_n8_queue_depth_p90", qd.p90 as f64)
        .num("jacobi_n8_queue_depth_p99", qd.p99 as f64)
        .num("jacobi_n8_ckpt_interval_p50_us", ci.p50 as f64)
        .num("jacobi_n8_ckpt_interval_p90_us", ci.p90 as f64)
        .num("jacobi_n8_ckpt_interval_p99_us", ci.p99 as f64);
    // Sweep-engine trajectory: cell throughput on a small replicated
    // matrix (2 process counts × 1 failure rate × 5 protocols, 3 seeds
    // per cell) plus a representative interval width — the mean 95% CI
    // half-width of the overhead ratio across the aggregate rows. The
    // width tracks the seed-to-seed variance the aggregation machinery
    // exists to quantify; a jump means the protocols got noisier or the
    // accumulator regressed.
    let plan = SweepPlan::builder()
        .ns([2usize, 4])
        .seeds_per_cell(3)
        .failure_rates([1.0])
        .build()
        .expect("static sweep plan is valid");
    let mut collect = CollectSink::default();
    let summary = run_sweep(&plan, &mut [&mut collect]);
    let mean_ci_width = collect
        .rows
        .iter()
        .filter_map(|r| r.overhead_ratio.ci95_half)
        .sum::<f64>()
        / collect.rows.len() as f64;
    assert!(mean_ci_width.is_finite());
    json = json
        .num("sweep_cells", summary.cells as f64)
        .num("sweep_trials", summary.trials as f64)
        .num("sweep_cells_per_sec", summary.cells_per_sec())
        .num("sweep_overhead_ratio_mean_ci95", mean_ci_width);
    // Large-n scaling keys, lowered engine only. `jacobi`/`stencil_1d`
    // are communication-bound at these sizes — nearly every executed
    // instruction is a send/recv/checkpoint that crosses the event
    // queue — while `jacobi_cells` adds the per-cell relaxation
    // arithmetic a real stencil performs between exchanges, which runs
    // on the inline fast path. Tracking both regimes separately keeps
    // the queue-bound path and the instruction-dense path honest: a
    // calendar-queue or clock-piggyback regression shows up in the
    // former, an interpreter regression in the latter.
    let large: [(&str, acfc_mpsl::Program, usize); 4] = [
        ("jacobi_n256", programs::jacobi(20), 256),
        ("jacobi_n1024", programs::jacobi(20), 1024),
        ("stencil_n2048", programs::stencil_1d(20), 2048),
        ("jacobi_cells_n1024", programs::jacobi_cells(20, 1024), 1024),
    ];
    let mut jacobi_n1024 = (0u64, 0f64);
    for (name, program, n) in &large {
        let (events, eps) = large_n_events_per_sec(program, *n, 3);
        if *name == "jacobi_n1024" {
            jacobi_n1024 = (events, eps);
        }
        json = json
            .num(&format!("{name}_events"), events as f64)
            .num(&format!("{name}_events_per_sec"), eps);
    }
    // Speedup over the pre-lowering baseline at n = 1024 on jacobi(20).
    // One baseline run only: the old engine's always-dense clocks and
    // O(n) inbox scans put it at whole seconds here — exactly the cost
    // this PR's delta piggybacks and lazy per-channel inboxes remove —
    // so there is no need for min-of-batches on that side.
    let compiled = compile(&programs::jacobi(20));
    let t = std::time::Instant::now();
    let base_trace = sim_baseline::run(&compiled, &SimConfig::new(1024));
    let base_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        base_trace.metrics.instructions, jacobi_n1024.0,
        "engines diverged on jacobi at n=1024"
    );
    let base_eps = base_trace.metrics.instructions as f64 / base_secs;
    json = json.num("large_n_speedup", jacobi_n1024.1 / base_eps);
    let overhead = obs_overhead_pct(&programs::jacobi(200), 8, 400);
    assert!(
        overhead < 2.0,
        "SimObs overhead {overhead:.2}% exceeds the 2% budget \
         (and the disabled path must cost strictly less)"
    );
    let overhead_1024 = obs_overhead_pct(&programs::jacobi(6), 1024, 50);
    assert!(
        overhead_1024 < 2.0,
        "SimObs overhead at n=1024 is {overhead_1024:.2}%, over the 2% budget"
    );
    let folded_overhead = obs_folded_overhead_pct(&programs::jacobi(200), 8, 400);
    assert!(
        folded_overhead < 2.0,
        "folded-export overhead {folded_overhead:.2}% exceeds the 2% budget"
    );
    let json = json
        .num("obs_overhead_pct", overhead)
        .num("obs_overhead_n1024_pct", overhead_1024)
        .num("obs_folded_overhead_pct", folded_overhead)
        .render();
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("{json}");
}

fn main() {
    // Simulator benches run first, on a pristine heap: the analysis
    // benches below allocate enough to fragment the allocator, which
    // pushes the engine's preallocated record buffers onto mmap-backed
    // chunks and taxes every subsequent run with page faults.
    emit_bench_sim();

    // Pipeline wall-time over every stock workload, one pass.
    let stock = programs::all_stock();
    let cfg = AnalysisConfig::for_nprocs(8);
    let s = bench("pipeline/all_stock", 500, || {
        for p in &stock {
            black_box(analyze(black_box(p), &cfg).unwrap());
        }
    });
    let pipeline_ms = s.median_ns / 1e6;

    // Phase III with and without the incremental replay, and the
    // pre-optimization baseline on the same trajectory.
    let (moves_per_sec_inc, inc_secs) = phase3_stats(true);
    let (moves_per_sec_scratch, scratch_secs) = phase3_stats(false);
    let heavy = many_exchanges(16);
    let p3cfg = Phase3Config {
        nprocs: 8,
        max_iterations: 64,
        ..Phase3Config::default()
    };
    let heavy_moves = ensure_recovery_lines(&heavy, &p3cfg)
        .expect("repairable")
        .moves
        .len();
    let s = bench("phase3/seed_baseline", 400, || {
        black_box(seed_ensure_recovery_lines(black_box(&heavy), &p3cfg).unwrap())
    });
    let seed_secs = s.median_ns / 1e9;
    let s = bench("phase3/optimized_heavy", 400, || {
        black_box(ensure_recovery_lines(black_box(&heavy), &p3cfg).unwrap())
    });
    let opt_heavy_secs = s.median_ns / 1e9;

    // Monte-Carlo throughput, sequential vs. configured threads.
    let p = IntervalParams {
        lambda: 1e-4,
        t: 300.0,
        o_total: 1.78,
        l_total: 4.292,
        r_recovery: 3.32,
    };
    let trials = 200_000usize;
    let threads = configured_threads();
    let s1 = bench("mc/seq", 400, || {
        simulate_interval_threads(black_box(&p), trials, 42, 1)
    });
    let mc_seq = trials as f64 / (s1.median_ns / 1e9);
    // With one configured thread the "parallel" call takes the exact
    // sequential fallback path in `par_map_threads`, so timing it
    // separately would only record noise between two runs of the same
    // code; the speedup is 1 by construction.
    let mc_par = if threads <= 1 {
        mc_seq
    } else {
        let sn = bench("mc/par", 400, || {
            simulate_interval_threads(black_box(&p), trials, 42, threads)
        });
        trials as f64 / (sn.median_ns / 1e9)
    };

    let mut json = Json::new()
        .str("bench", "analysis")
        .num("pipeline_all_stock_ms", pipeline_ms)
        .num("pipeline_workloads", stock.len() as f64)
        .num("phase3_moves_per_sec_incremental", moves_per_sec_inc)
        .num("phase3_moves_per_sec_from_scratch", moves_per_sec_scratch)
        .num("phase3_incremental_speedup", scratch_secs / inc_secs)
        .num("phase3_heavy_moves", heavy_moves as f64)
        .num("phase3_heavy_seed_baseline_ms", seed_secs * 1e3)
        .num("phase3_heavy_optimized_ms", opt_heavy_secs * 1e3)
        .num("phase3_speedup_vs_seed", seed_secs / opt_heavy_secs)
        .num("mc_trials_per_sec_1_thread", mc_seq);
    // At one thread the parallel measurement IS the sequential one —
    // emitting `mc_trials_per_sec_1_threads` as well would duplicate
    // the canonical key above under a near-identical name.
    if threads > 1 {
        json = json.num(&format!("mc_trials_per_sec_{threads}_threads"), mc_par);
    }
    let json = json
        .num("mc_thread_speedup", mc_par / mc_seq)
        .num("mc_threads", threads as f64)
        .render();
    std::fs::write("BENCH_analysis.json", &json).expect("write BENCH_analysis.json");
    println!("{json}");

    // One fully instrumented pass (analysis + observed run of the
    // jacobi_n8 workload) so the bench output ends with the obs
    // counter/histogram table. With the `obs` feature compiled out the
    // registry stays empty and the render says so.
    acfc_obs::reset();
    acfc_obs::set_enabled(true);
    let p = programs::jacobi(20);
    let a = analyze(&p, &AnalysisConfig::for_nprocs(8)).expect("stock workload analyzes");
    let mut obs = SimObs::counters();
    black_box(acfc_sim::run_observed(
        &compile(&a.program),
        &SimConfig::new(8),
        &mut obs,
    ));
    obs.publish();
    acfc_obs::set_enabled(false);
    println!("--- obs counter summary (jacobi_n8 analysis + run) ---");
    print!("{}", acfc_obs::render(&acfc_obs::snapshot()));
}
