//! Emits `BENCH_analysis.json`: the perf-trajectory numbers this repo
//! tracks across PRs.
//!
//! Three families of measurements:
//!
//! * **Pipeline wall-time** — end-to-end [`acfc_core::analyze`] over
//!   the stock workloads (the paper's entire offline cost).
//! * **Phase III throughput** — Algorithm 3.2 relocations per second on
//!   the repair-heavy workloads, with the [`ReanalysisCache`] replay
//!   enabled vs. recomputing Phase II from scratch every iteration, and
//!   against [`acfc_bench::seed_baseline`] (the pre-optimization hot
//!   path: per-iteration clone + rebuild, naive-BFS closures, per-edge
//!   Condition-1 scans) on the same move trajectory.
//! * **Monte-Carlo throughput** — §4 interval-simulation trials per
//!   second at one thread and at the configured thread count
//!   (`ACFC_THREADS` overrides), plus the implied speedup.
//!
//! Run via `cargo bench-json` (alias in `.cargo/config.toml`); the file
//! is written to the current directory.
//!
//! [`ReanalysisCache`]: acfc_core::ReanalysisCache

use acfc_bench::seed_baseline::seed_ensure_recovery_lines;
use acfc_core::{analyze, ensure_recovery_lines, AnalysisConfig, Phase3Config};
use acfc_mpsl::programs;
use acfc_perfmodel::{simulate_interval_threads, IntervalParams};
use acfc_util::bench::{bench, Json};
use acfc_util::parallel::configured_threads;
use std::hint::black_box;

/// Workloads whose placements Phase III actually has to repair (moves
/// are performed, so the incremental replay has iterations to save).
fn repair_heavy() -> Vec<acfc_mpsl::Program> {
    vec![
        programs::jacobi_odd_even(10),
        programs::pipeline_skewed(10),
        programs::pingpong_skewed(10),
        programs::fig6(10),
    ]
}

/// A Phase-III-heavy workload: `m` sequential odd/even exchange blocks,
/// each with the Figure 5 misplacement, so Algorithm 3.2 performs `m`
/// relocations (one iteration each) before the fixpoint.
fn many_exchanges(m: usize) -> acfc_mpsl::Program {
    let mut src = String::from("program many_exchanges;\n");
    for _ in 0..m {
        src.push_str(
            "if rank % 2 == 0 { checkpoint; send to rank + 1; recv from rank + 1; }\n\
             else { recv from rank - 1; checkpoint; send to rank - 1; }\n",
        );
    }
    acfc_mpsl::parse(&src).expect("workload parses")
}

fn phase3_stats(incremental: bool) -> (f64, f64) {
    let workloads = repair_heavy();
    let config = Phase3Config {
        nprocs: 8,
        incremental,
        ..Phase3Config::default()
    };
    let mut moves = 0usize;
    for p in &workloads {
        moves += ensure_recovery_lines(p, &config)
            .expect("repairable workload")
            .moves
            .len();
    }
    let s = bench(
        if incremental {
            "phase3/incremental"
        } else {
            "phase3/from_scratch"
        },
        400,
        || {
            for p in &workloads {
                black_box(ensure_recovery_lines(black_box(p), &config).unwrap());
            }
        },
    );
    let secs_per_pass = s.median_ns / 1e9;
    (moves as f64 / secs_per_pass, secs_per_pass)
}

fn main() {
    // Pipeline wall-time over every stock workload, one pass.
    let stock = programs::all_stock();
    let cfg = AnalysisConfig::for_nprocs(8);
    let s = bench("pipeline/all_stock", 500, || {
        for p in &stock {
            black_box(analyze(black_box(p), &cfg).unwrap());
        }
    });
    let pipeline_ms = s.median_ns / 1e6;

    // Phase III with and without the incremental replay, and the
    // pre-optimization baseline on the same trajectory.
    let (moves_per_sec_inc, inc_secs) = phase3_stats(true);
    let (moves_per_sec_scratch, scratch_secs) = phase3_stats(false);
    let heavy = many_exchanges(16);
    let p3cfg = Phase3Config {
        nprocs: 8,
        max_iterations: 64,
        ..Phase3Config::default()
    };
    let heavy_moves = ensure_recovery_lines(&heavy, &p3cfg)
        .expect("repairable")
        .moves
        .len();
    let s = bench("phase3/seed_baseline", 400, || {
        black_box(seed_ensure_recovery_lines(black_box(&heavy), &p3cfg).unwrap())
    });
    let seed_secs = s.median_ns / 1e9;
    let s = bench("phase3/optimized_heavy", 400, || {
        black_box(ensure_recovery_lines(black_box(&heavy), &p3cfg).unwrap())
    });
    let opt_heavy_secs = s.median_ns / 1e9;

    // Monte-Carlo throughput, sequential vs. configured threads.
    let p = IntervalParams {
        lambda: 1e-4,
        t: 300.0,
        o_total: 1.78,
        l_total: 4.292,
        r_recovery: 3.32,
    };
    let trials = 200_000usize;
    let threads = configured_threads();
    let s1 = bench("mc/seq", 400, || {
        simulate_interval_threads(black_box(&p), trials, 42, 1)
    });
    let sn = bench("mc/par", 400, || {
        simulate_interval_threads(black_box(&p), trials, 42, threads)
    });
    let mc_seq = trials as f64 / (s1.median_ns / 1e9);
    let mc_par = trials as f64 / (sn.median_ns / 1e9);

    let json = Json::new()
        .str("bench", "analysis")
        .num("pipeline_all_stock_ms", pipeline_ms)
        .num("pipeline_workloads", stock.len() as f64)
        .num("phase3_moves_per_sec_incremental", moves_per_sec_inc)
        .num("phase3_moves_per_sec_from_scratch", moves_per_sec_scratch)
        .num("phase3_incremental_speedup", scratch_secs / inc_secs)
        .num("phase3_heavy_moves", heavy_moves as f64)
        .num("phase3_heavy_seed_baseline_ms", seed_secs * 1e3)
        .num("phase3_heavy_optimized_ms", opt_heavy_secs * 1e3)
        .num("phase3_speedup_vs_seed", seed_secs / opt_heavy_secs)
        .num("mc_trials_per_sec_1_thread", mc_seq)
        .num(&format!("mc_trials_per_sec_{threads}_threads"), mc_par)
        .num("mc_thread_speedup", mc_par / mc_seq)
        .num("mc_threads", threads as f64)
        .render();
    std::fs::write("BENCH_analysis.json", &json).expect("write BENCH_analysis.json");
    println!("{json}");
}
