//! Runs the full evaluation sweep: both analytic figures, the
//! Monte-Carlo model validation (experiment E3), and the empirical
//! message-level protocol comparison on the simulator (the
//! simulation-backed companion to Figures 8/9).
//!
//! ```text
//! cargo run --release -p acfc-bench --bin sweep_all
//! ```

use acfc_bench::{empirical_comparison, paper_params, render_figure};
use acfc_perfmodel::{
    figure8, figure8_default_ns, figure9, figure9_default_wms, gamma_closed_form, optimal_k,
    simulate_interval, single_level_ratio, twolevel_ratio_analytic, IntervalParams, ModelProtocol,
    TwoLevelParams,
};
use acfc_protocols::render_table;

fn main() {
    let params = paper_params();

    println!("==============================================================");
    print!(
        "{}",
        render_figure(
            "Figure 8 — overhead ratio vs. number of processes",
            "n",
            &figure8(&params, &figure8_default_ns())
        )
    );

    println!("==============================================================");
    print!(
        "{}",
        render_figure(
            "Figure 9 — overhead ratio vs. message setup time w_m (n = 64)",
            "w_m (s)",
            &figure9(&params, 64, &figure9_default_wms())
        )
    );

    println!("==============================================================");
    println!("# E3 — Monte-Carlo validation of the interval model");
    println!("lambda\tanalytic Γ\tMC mean\tMC stderr\trel.err");
    for lambda in [1e-5, 1e-4, 1e-3] {
        let p = IntervalParams {
            lambda,
            t: 300.0,
            o_total: params.o,
            l_total: params.l,
            r_recovery: params.r_recovery,
        };
        let exact = gamma_closed_form(&p);
        let est = simulate_interval(&p, 100_000, 0xACFC);
        println!(
            "{lambda:.0e}\t{exact:.4}\t{:.4}\t{:.4}\t{:.2e}",
            est.mean,
            est.std_err,
            (est.mean - exact).abs() / exact
        );
    }

    println!("==============================================================");
    println!("# Empirical message-level comparison (Jacobi, n = 4, one failure)");
    print!("{}", render_table(&empirical_comparison(4, 7)));

    println!("==============================================================");
    println!("# E6 — two-level recovery extension (refs [24, 25])");
    let tl = TwoLevelParams {
        lambda_single: 5e-5,
        lambda_cat: 1e-6,
        t: 300.0,
        o1: 0.2,
        o2: params.o,
        r1: 0.5,
        r2: params.r_recovery,
        k: 8,
    };
    let (k_star, best) = optimal_k(&tl, 256);
    println!(
        "single-level ratio (all stable-storage): {:.6e}",
        single_level_ratio(&tl)
    );
    println!(
        "two-level ratio at k=8: {:.6e}; optimal k* = {k_star} with ratio {:.6e}",
        twolevel_ratio_analytic(&tl),
        best
    );

    println!("==============================================================");
    println!("# Per-checkpoint protocol message overhead (model, seconds)");
    println!("n\tM(SaS)\tM(C-L)\tM(appl-driven)");
    for n in [2usize, 8, 32, 128] {
        println!(
            "{n}\t{:.4}\t{:.4}\t{:.4}",
            params.message_overhead(ModelProtocol::SyncAndStop, n),
            params.message_overhead(ModelProtocol::ChandyLamport, n),
            params.message_overhead(ModelProtocol::AppDriven, n),
        );
    }
}
