//! Regenerates **Figure 8** of the paper: overhead ratio vs. number of
//! processes for the application-driven, SaS, and Chandy–Lamport
//! protocols, using the §4 constants (`o = 1.78 s`, `l = 4.292 s`,
//! `R = 3.32 s`, `p = 1.23·10⁻⁶`, `T = 300 s`).
//!
//! ```text
//! cargo run -p acfc-bench --bin fig8
//! ```
//!
//! Prints a TSV series (one row per process count). The qualitative
//! shape to compare against the paper: all three curves grow with `n`
//! (the system failure rate is proportional to `n`), and the
//! application-driven curve is the lowest everywhere because it adds no
//! message or coordination overhead.

use acfc_bench::{paper_params, render_figure};
use acfc_perfmodel::{figure8, figure8_default_ns};

fn main() {
    let params = paper_params();
    let rows = figure8(&params, &figure8_default_ns());
    print!(
        "{}",
        render_figure(
            "Figure 8 — overhead ratio vs. number of processes",
            "n",
            &rows
        )
    );
    // Headline check, printed so the run is self-describing.
    let ok = rows
        .iter()
        .all(|r| r.app_driven < r.sas && r.app_driven < r.chandy_lamport);
    println!(
        "# appl-driven lowest at every n: {}",
        if ok { "yes (matches the paper)" } else { "NO" }
    );
}
