//! Regenerates **Figure 9** of the paper: overhead ratio vs. the
//! message setup time `w_m` at a fixed process count.
//!
//! ```text
//! cargo run -p acfc-bench --bin fig9 [n]
//! ```
//!
//! The qualitative shape to compare against the paper: the SaS and C-L
//! curves worsen as `w_m` grows (their per-checkpoint control messages
//! become more expensive — e.g. under network congestion, as the paper
//! notes), while the application-driven curve is exactly flat: it sends
//! no control messages at all.

use acfc_bench::{paper_params, render_figure};
use acfc_perfmodel::{figure9, figure9_default_wms};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64usize);
    let params = paper_params();
    let rows = figure9(&params, n, &figure9_default_wms());
    print!(
        "{}",
        render_figure(
            &format!("Figure 9 — overhead ratio vs. message setup time w_m (n = {n})"),
            "w_m (s)",
            &rows
        )
    );
    let flat = rows
        .windows(2)
        .all(|w| (w[0].app_driven - w[1].app_driven).abs() < 1e-15);
    let growing = rows
        .windows(2)
        .all(|w| w[1].sas > w[0].sas && w[1].chandy_lamport > w[0].chandy_lamport);
    println!(
        "# appl-driven flat: {}; SaS and C-L growing: {}",
        if flat {
            "yes (matches the paper)"
        } else {
            "NO"
        },
        if growing {
            "yes (matches the paper)"
        } else {
            "NO"
        },
    );
}
