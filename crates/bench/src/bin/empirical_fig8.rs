//! The empirical companion to Figure 8: the same protocol comparison,
//! measured on the message-level simulator instead of the analytic
//! model — sweeping the process count with per-process failure
//! injection scaled as the paper scales `λ(n)`.
//!
//! ```text
//! cargo run --release -p acfc-bench --bin empirical_fig8
//! ```

use acfc_protocols::{empirical_sweep, render_sweep, SweepConfig};

fn main() {
    let config = SweepConfig {
        ns: vec![2, 4, 8, 16],
        lambda_per_proc: 0.8,
        ..SweepConfig::default()
    };
    println!("# Empirical Figure-8 companion (simulator-measured overhead ratios)");
    println!("# workload: jacobi(10); failures ~ Exp(n * 0.8/s of simulated time)");
    print!("{}", render_sweep(&empirical_sweep(&config)));
}
