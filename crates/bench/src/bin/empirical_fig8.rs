//! The empirical companion to Figure 8: the same protocol comparison,
//! measured on the message-level simulator instead of the analytic
//! model — sweeping the process count with per-process failure
//! injection scaled as the paper scales `λ(n)`, three seeds per cell
//! aggregated into mean ± 95% CI rows.
//!
//! ```text
//! cargo run --release -p acfc-bench --bin empirical_fig8
//! ```

use acfc_protocols::{run_sweep, RowSink, SweepPlan, TableSink};

fn main() {
    let plan = SweepPlan::builder()
        .ns([2usize, 4, 8, 16])
        .seeds_per_cell(3)
        .failure_rates([0.8])
        .build()
        .expect("static plan is valid");
    println!("# Empirical Figure-8 companion (simulator-measured overhead ratios)");
    println!("# workload: jacobi(10); failures ~ Exp(n * 0.8/s of simulated time)");
    let mut table = TableSink::new(std::io::stdout());
    let mut sinks: [&mut dyn RowSink; 1] = [&mut table];
    run_sweep(&plan, &mut sinks);
}
