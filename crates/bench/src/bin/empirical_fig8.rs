//! The empirical companion to Figure 8: the same protocol comparison,
//! measured on the message-level simulator instead of the analytic
//! model — sweeping the process count with per-process failure
//! injection scaled as the paper scales `λ(n)`, three seeds per cell
//! aggregated into mean ± 95% CI rows.
//!
//! ```text
//! cargo run --release -p acfc-bench --bin empirical_fig8
//! cargo run --release -p acfc-bench --bin empirical_fig8 -- --large-n
//! ```
//!
//! `--large-n` swaps the paper-scale grid (n ≤ 16) for the scaled-up
//! one the rebuilt engine core exists for — n ∈ {256, 1024, 2048} with
//! a small per-process rate (λ = 0.004/s; per-run failure counts stay
//! bounded as `n·λ` instead of exploding) and two seeds per cell — and
//! streams the aggregate rows to `fig8_large_n.jsonl` alongside the
//! stdout table, one JSON object per row, so downstream plots can read
//! the artifact without scraping the table.

use acfc_protocols::{run_sweep, JsonlSink, RowSink, SweepPlan, TableSink};

fn main() {
    let large_n = std::env::args().any(|a| a == "--large-n");
    if large_n {
        let plan = SweepPlan::builder()
            .ns([256usize, 1024, 2048])
            .seeds_per_cell(2)
            .failure_rates([0.004])
            .build()
            .expect("static plan is valid");
        println!("# Empirical Figure-8 companion, large-n grid (simulator-measured)");
        println!("# workload: jacobi(10); failures ~ Exp(n * 0.004/s of simulated time)");
        println!("# streaming rows to fig8_large_n.jsonl");
        let file = std::fs::File::create("fig8_large_n.jsonl").expect("create fig8_large_n.jsonl");
        let mut jsonl = JsonlSink::new(file);
        let mut table = TableSink::new(std::io::stdout());
        let mut sinks: [&mut dyn RowSink; 2] = [&mut table, &mut jsonl];
        run_sweep(&plan, &mut sinks);
        return;
    }
    let plan = SweepPlan::builder()
        .ns([2usize, 4, 8, 16])
        .seeds_per_cell(3)
        .failure_rates([0.8])
        .build()
        .expect("static plan is valid");
    println!("# Empirical Figure-8 companion (simulator-measured overhead ratios)");
    println!("# workload: jacobi(10); failures ~ Exp(n * 0.8/s of simulated time)");
    let mut table = TableSink::new(std::io::stdout());
    let mut sinks: [&mut dyn RowSink; 1] = [&mut table];
    run_sweep(&plan, &mut sinks);
}
