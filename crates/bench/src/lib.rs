//! Shared helpers for the ACFC benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation figures
//! (Figure 8: overhead ratio vs. number of processes; Figure 9:
//! overhead ratio vs. message setup time), and the wall-clock benches in
//! `benches/` measure the cost of the library's own machinery. This
//! library holds the pieces they share: canonical workloads, the
//! simulator-vs-model validation runs, and plain-text rendering.

use acfc_mpsl::{programs, Program};
use acfc_perfmodel::{ModelParams, Row};
use acfc_protocols::{compare_all, CompareConfig, RunStats};
use acfc_sim::FailurePlan;

pub mod seed_baseline;
pub mod sim_baseline;

/// The canonical workloads used across binaries and benches.
pub fn workloads() -> Vec<Program> {
    vec![
        programs::jacobi(8),
        programs::jacobi_odd_even(8),
        programs::pipeline(8),
        programs::stencil_1d(8),
        programs::master_worker(4),
    ]
}

/// Renders figure rows plus a short provenance header.
pub fn render_figure(title: &str, x_label: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&acfc_perfmodel::to_tsv(x_label, rows));
    out
}

/// Runs the message-level simulator comparison that accompanies the
/// analytic figures: every protocol on a Jacobi workload at `n`
/// processes with one injected failure.
pub fn empirical_comparison(n: usize, seed: u64) -> Vec<RunStats> {
    let program = programs::jacobi(8);
    let cfg = CompareConfig::builder(n)
        .seed(seed)
        .failures(FailurePlan::at(vec![(
            acfc_sim::SimTime::from_millis(250),
            0,
        )]))
        .build()
        .unwrap();
    compare_all(&program, &cfg)
}

/// The model parameters used for all regenerated figures (the paper's
/// §4 constants; see `DESIGN.md` for the `w_m`/`w_b` choices).
pub fn paper_params() -> ModelParams {
    ModelParams::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_analyzable() {
        for p in workloads() {
            acfc_core::analyze(&p, &acfc_core::AnalysisConfig::for_nprocs(4))
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn render_figure_has_header() {
        let rows = acfc_perfmodel::figure8(&paper_params(), &[2, 4]);
        let text = render_figure("Figure 8", "n", &rows);
        assert!(text.starts_with("# Figure 8\n"));
        assert_eq!(text.lines().count(), 4);
    }
}
