//! Benchmarks the protocol comparison harness and the recovery-line
//! computation (rollback propagation over the dependency graph).

use acfc_protocols::{max_consistent_line_of, run_protocol, CompareConfig, ProtocolKind};
use acfc_sim::{compile, run_with_hooks, SimConfig, TimerCheckpoints};
use acfc_util::bench::bench;
use std::hint::black_box;

fn main() {
    let program = acfc_mpsl::programs::jacobi(10);
    let cfg = CompareConfig::builder(4).build().unwrap();
    for kind in ProtocolKind::all() {
        let s = bench(&format!("protocol/{}", kind.name()), 200, || {
            run_protocol(black_box(&program), kind, &cfg)
        });
        println!("{}", s.render());
    }
    // Rollback propagation on a long uncoordinated trace.
    let trace = {
        let p = acfc_mpsl::programs::ring(50, 1024);
        let mut hooks = TimerCheckpoints::new(4, 10_000, 3_000);
        run_with_hooks(&compile(&p), &SimConfig::new(4), &mut hooks)
    };
    let s = bench("recovery/max_consistent_line", 200, || {
        max_consistent_line_of(black_box(&trace))
    });
    println!("{}", s.render());
}
