//! Benchmarks the protocol comparison harness and the recovery-line
//! computation (rollback propagation over the dependency graph).

use acfc_protocols::{max_consistent_line_of, run_protocol, CompareConfig, ProtocolKind};
use acfc_sim::{compile, run_with_hooks, SimConfig, TimerCheckpoints};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_protocols(c: &mut Criterion) {
    let program = acfc_mpsl::programs::jacobi(10);
    let cfg = CompareConfig::new(4, 60_000);
    for kind in ProtocolKind::all() {
        c.bench_function(&format!("protocol/{}", kind.name()), |b| {
            b.iter(|| run_protocol(black_box(&program), kind, &cfg))
        });
    }
    // Rollback propagation on a long uncoordinated trace.
    let trace = {
        let p = acfc_mpsl::programs::ring(50, 1024);
        let mut hooks = TimerCheckpoints::new(4, 10_000, 3_000);
        run_with_hooks(&compile(&p), &SimConfig::new(4), &mut hooks)
    };
    c.bench_function("recovery/max_consistent_line", |b| {
        b.iter(|| max_consistent_line_of(black_box(&trace)))
    });
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
