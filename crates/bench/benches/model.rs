//! Benchmarks the performance-model primitives: closed-form Γ, the
//! numeric Markov chain, and the Monte-Carlo interval simulation.

use acfc_perfmodel::{
    gamma_closed_form, gamma_markov, simulate_interval, IntervalParams,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn params() -> IntervalParams {
    IntervalParams {
        lambda: 1e-4,
        t: 300.0,
        o_total: 1.78,
        l_total: 4.292,
        r_recovery: 3.32,
    }
}

fn bench_model(c: &mut Criterion) {
    let p = params();
    c.bench_function("gamma_closed_form", |b| {
        b.iter(|| gamma_closed_form(black_box(&p)))
    });
    c.bench_function("gamma_markov_chain", |b| {
        b.iter(|| gamma_markov(black_box(&p)))
    });
    c.bench_function("monte_carlo_10k_intervals", |b| {
        b.iter(|| simulate_interval(black_box(&p), 10_000, 42))
    });
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
