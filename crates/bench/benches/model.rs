//! Benchmarks the performance-model primitives: closed-form Γ, the
//! numeric Markov chain, and the Monte-Carlo interval simulation
//! (sequential and at the configured thread count).

use acfc_perfmodel::{
    gamma_closed_form, gamma_markov, simulate_interval, simulate_interval_threads, IntervalParams,
};
use acfc_util::bench::bench;
use acfc_util::parallel::configured_threads;
use std::hint::black_box;

fn params() -> IntervalParams {
    IntervalParams {
        lambda: 1e-4,
        t: 300.0,
        o_total: 1.78,
        l_total: 4.292,
        r_recovery: 3.32,
    }
}

fn main() {
    let p = params();
    let s = bench("gamma_closed_form", 100, || {
        gamma_closed_form(black_box(&p))
    });
    println!("{}", s.render());
    let s = bench("gamma_markov_chain", 100, || gamma_markov(black_box(&p)));
    println!("{}", s.render());
    let s = bench("monte_carlo_100k_seq", 300, || {
        simulate_interval_threads(black_box(&p), 100_000, 42, 1)
    });
    println!("{}", s.render());
    let threads = configured_threads();
    let s = bench(&format!("monte_carlo_100k_t{threads}"), 300, || {
        simulate_interval(black_box(&p), 100_000, 42)
    });
    println!("{}", s.render());
}
