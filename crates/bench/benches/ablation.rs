//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Matching mode** — per-channel FIFO sequence matching (default)
//!   vs. the paper's literal Algorithm 3.1 (`PreferUnmatched`) vs. the
//!   all-pairs over-approximation (`Conservative`). The edge counts
//!   differ (precision), and so does the analysis cost.
//! * **Loop policy** — the paper's loop optimization (`Optimized`) vs.
//!   literal Condition 1 (`Strict`), measured as end-to-end Phase III
//!   cost on programs where the policies diverge.
//! * **Reachability backend** — the SCC-condensed bitset closure vs.
//!   the naive per-node BFS build, and closure probes vs. per-query
//!   BFS, justifying the precomputation.

use acfc_cfg::{build_cfg, find_path, Reach};
use acfc_core::{
    analyze_iddep, compute_attrs, ensure_recovery_lines, match_send_recv, LoopPolicy, MatchingMode,
    Phase3Config,
};
use acfc_mpsl::programs;
use acfc_util::bench::bench;
use std::hint::black_box;

fn bench_matching_modes() {
    let p = programs::jacobi_odd_even(10);
    let (cfg, lowered) = build_cfg(&p);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, 16, &iddep);
    for (name, mode) in [
        ("fifo_ordered", MatchingMode::FifoOrdered),
        ("prefer_unmatched", MatchingMode::PreferUnmatched),
        ("conservative", MatchingMode::Conservative),
    ] {
        let s = bench(&format!("matching/{name}"), 150, || {
            match_send_recv(black_box(&cfg), &attrs, &iddep, mode)
        });
        println!("{}", s.render());
    }
}

fn bench_loop_policies() {
    for (name, policy) in [
        ("optimized", LoopPolicy::Optimized),
        ("strict", LoopPolicy::Strict),
    ] {
        let config = Phase3Config {
            nprocs: 8,
            policy,
            ..Phase3Config::default()
        };
        let p = programs::pipeline_skewed(8);
        let s = bench(&format!("phase3/{name}/pipeline_skewed"), 200, || {
            // Strict mode may legitimately fail on some shapes; the
            // cost of deciding either way is what's measured.
            let _ = ensure_recovery_lines(black_box(&p), &config);
        });
        println!("{}", s.render());
    }
}

fn bench_reachability() {
    let (cfg, _) = build_cfg(&programs::bcast_reduce(6));
    let mut adj = vec![Vec::new(); cfg.len()];
    for (a, b, _) in cfg.edges() {
        adj[a.index()].push(b.index());
    }
    let s = bench("reach/closure_precompute_condensed", 150, || {
        Reach::compute(black_box(&adj))
    });
    println!("{}", s.render());
    let s = bench("reach/closure_precompute_naive_bfs", 150, || {
        Reach::compute_naive(black_box(&adj))
    });
    println!("{}", s.render());
    let n = cfg.len();
    let s = bench("reach/all_pairs_by_bfs", 150, || {
        let mut count = 0usize;
        for a in 0..n {
            for t in 0..n {
                if find_path(black_box(&adj), a, t, &|_, _| true).is_some() {
                    count += 1;
                }
            }
        }
        count
    });
    println!("{}", s.render());
    let reach = Reach::compute(&adj);
    let s = bench("reach/all_pairs_by_closure", 150, || {
        let mut count = 0usize;
        for a in 0..n {
            for t in 0..n {
                if reach.reachable(a, t) {
                    count += 1;
                }
            }
        }
        count
    });
    println!("{}", s.render());
}

fn main() {
    bench_matching_modes();
    bench_loop_policies();
    bench_reachability();
}
