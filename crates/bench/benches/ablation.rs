//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Matching mode** — per-channel FIFO sequence matching (default)
//!   vs. the paper's literal Algorithm 3.1 (`PreferUnmatched`) vs. the
//!   all-pairs over-approximation (`Conservative`). The edge counts
//!   differ (precision), and so does the analysis cost.
//! * **Loop policy** — the paper's loop optimization (`Optimized`) vs.
//!   literal Condition 1 (`Strict`), measured as end-to-end Phase III
//!   cost on programs where the policies diverge.
//! * **Reachability backend** — the bitset closure vs. per-query BFS,
//!   justifying the precomputation.

use acfc_cfg::{build_cfg, find_path, Reach};
use acfc_core::{
    analyze_iddep, compute_attrs, ensure_recovery_lines, match_send_recv, LoopPolicy,
    MatchingMode, Phase3Config,
};
use acfc_mpsl::programs;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_matching_modes(c: &mut Criterion) {
    let p = programs::jacobi_odd_even(10);
    let (cfg, lowered) = build_cfg(&p);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, 16, &iddep);
    for (name, mode) in [
        ("fifo_ordered", MatchingMode::FifoOrdered),
        ("prefer_unmatched", MatchingMode::PreferUnmatched),
        ("conservative", MatchingMode::Conservative),
    ] {
        c.bench_function(&format!("matching/{name}"), |b| {
            b.iter(|| match_send_recv(black_box(&cfg), &attrs, &iddep, mode))
        });
    }
}

fn bench_loop_policies(c: &mut Criterion) {
    for (name, policy) in [
        ("optimized", LoopPolicy::Optimized),
        ("strict", LoopPolicy::Strict),
    ] {
        let config = Phase3Config {
            nprocs: 8,
            policy,
            ..Phase3Config::default()
        };
        let p = programs::pipeline_skewed(8);
        c.bench_function(&format!("phase3/{name}/pipeline_skewed"), |b| {
            b.iter(|| {
                // Strict mode may legitimately fail on some shapes; the
                // cost of deciding either way is what's measured.
                let _ = ensure_recovery_lines(black_box(&p), &config);
            })
        });
    }
}

fn bench_reachability(c: &mut Criterion) {
    let (cfg, _) = build_cfg(&programs::bcast_reduce(6));
    let mut adj = vec![Vec::new(); cfg.len()];
    for (a, b, _) in cfg.edges() {
        adj[a.index()].push(b.index());
    }
    c.bench_function("reach/closure_precompute", |b| {
        b.iter(|| Reach::compute(black_box(&adj)))
    });
    let n = cfg.len();
    c.bench_function("reach/all_pairs_by_bfs", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for a in 0..n {
                for t in 0..n {
                    if find_path(black_box(&adj), a, t, &|_, _| true).is_some() {
                        count += 1;
                    }
                }
            }
            count
        })
    });
    let reach = Reach::compute(&adj);
    c.bench_function("reach/all_pairs_by_closure", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for a in 0..n {
                for t in 0..n {
                    if reach.reachable(a, t) {
                        count += 1;
                    }
                }
            }
            count
        })
    });
}

criterion_group!(benches, bench_matching_modes, bench_loop_policies, bench_reachability);
criterion_main!(benches);
