//! Benchmarks the discrete-event engine: events per second on the
//! canonical workloads, with and without failure injection.

use acfc_sim::{
    compile, run, run_with_failures, CutPicker, FailurePlan, NoHooks, SimConfig, SimTime,
};
use acfc_util::bench::bench;
use std::hint::black_box;

fn main() {
    for (name, program, n) in [
        ("jacobi_n8", acfc_mpsl::programs::jacobi(20), 8usize),
        ("stencil_n16", acfc_mpsl::programs::stencil_1d(20), 16),
        (
            "master_worker_n8",
            acfc_mpsl::programs::master_worker(10),
            8,
        ),
    ] {
        let compiled = compile(&program);
        let cfg = SimConfig::new(n);
        let s = bench(&format!("sim/{name}"), 200, || {
            run(black_box(&compiled), &cfg)
        });
        println!("{}", s.render());
    }
    // Failure + rollback path.
    let compiled = compile(&acfc_mpsl::programs::jacobi(20));
    let cfg = SimConfig::new(4);
    let s = bench("sim/jacobi_n4_with_failures", 200, || {
        let mut hooks = NoHooks;
        let plan = FailurePlan::at(vec![
            (SimTime::from_millis(300), 0),
            (SimTime::from_millis(700), 2),
        ]);
        run_with_failures(
            black_box(&compiled),
            &cfg,
            &mut hooks,
            plan,
            CutPicker::AlignedSeq,
        )
    });
    println!("{}", s.render());
}
