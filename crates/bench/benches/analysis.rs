//! Benchmarks the offline analysis (the paper's three phases) on the
//! stock workloads: this is the entire cost of the protocol, paid once
//! before execution — the run-time cost is zero by construction.

use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::programs;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_analysis(c: &mut Criterion) {
    let cfg = AnalysisConfig::for_nprocs(8);
    for (name, program) in [
        ("jacobi", programs::jacobi(10)),
        ("jacobi_odd_even", programs::jacobi_odd_even(10)),
        ("pipeline_skewed", programs::pipeline_skewed(10)),
        ("bcast_reduce", programs::bcast_reduce(4)),
        ("master_worker", programs::master_worker(4)),
    ] {
        c.bench_function(&format!("analyze/{name}"), |b| {
            b.iter(|| analyze(black_box(&program), &cfg).unwrap())
        });
    }
    // Scaling in the analysis n (attribute sets are bitmasks; matching
    // enumerates rank pairs).
    let p = programs::jacobi_odd_even(10);
    for n in [4usize, 16, 64] {
        let cfg = AnalysisConfig::for_nprocs(n);
        c.bench_function(&format!("analyze/jacobi_odd_even/n{n}"), |b| {
            b.iter(|| analyze(black_box(&p), &cfg).unwrap())
        });
    }
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
