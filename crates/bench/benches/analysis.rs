//! Benchmarks the offline analysis (the paper's three phases) on the
//! stock workloads: this is the entire cost of the protocol, paid once
//! before execution — the run-time cost is zero by construction.

use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::programs;
use acfc_util::bench::bench;
use std::hint::black_box;

fn main() {
    let cfg = AnalysisConfig::for_nprocs(8);
    for (name, program) in [
        ("jacobi", programs::jacobi(10)),
        ("jacobi_odd_even", programs::jacobi_odd_even(10)),
        ("pipeline_skewed", programs::pipeline_skewed(10)),
        ("bcast_reduce", programs::bcast_reduce(4)),
        ("master_worker", programs::master_worker(4)),
    ] {
        let s = bench(&format!("analyze/{name}"), 200, || {
            analyze(black_box(&program), &cfg).unwrap()
        });
        println!("{}", s.render());
    }
    // Scaling in the analysis n (attribute sets are bitmasks; matching
    // enumerates rank pairs).
    let p = programs::jacobi_odd_even(10);
    for n in [4usize, 16, 64] {
        let cfg = AnalysisConfig::for_nprocs(n);
        let s = bench(&format!("analyze/jacobi_odd_even/n{n}"), 200, || {
            analyze(black_box(&p), &cfg).unwrap()
        });
        println!("{}", s.render());
    }
    // The incremental-Phase-III knob, isolated.
    for (name, incremental) in [("incremental", true), ("from_scratch", false)] {
        let cfg = AnalysisConfig {
            incremental,
            ..AnalysisConfig::for_nprocs(8)
        };
        let s = bench(&format!("analyze/phase3/{name}"), 200, || {
            analyze(black_box(&p), &cfg).unwrap()
        });
        println!("{}", s.render());
    }
}
