//! Benchmarks the figure regeneration itself (the full Figure 8 and
//! Figure 9 sweeps) — cheap by construction, pinned here so a
//! regression in the model's evaluation cost is visible.

use acfc_perfmodel::{figure8, figure8_default_ns, figure9, figure9_default_wms, ModelParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let params = ModelParams::default();
    c.bench_function("figure8_full_sweep", |b| {
        b.iter(|| figure8(black_box(&params), &figure8_default_ns()))
    });
    c.bench_function("figure9_full_sweep", |b| {
        b.iter(|| figure9(black_box(&params), 64, &figure9_default_wms()))
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
