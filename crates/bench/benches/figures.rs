//! Benchmarks the figure regeneration itself (the full Figure 8 and
//! Figure 9 sweeps) — cheap by construction, pinned here so a
//! regression in the model's evaluation cost is visible.

use acfc_perfmodel::{figure8, figure8_default_ns, figure9, figure9_default_wms, ModelParams};
use acfc_util::bench::bench;
use std::hint::black_box;

fn main() {
    let params = ModelParams::default();
    let s = bench("figure8_full_sweep", 200, || {
        figure8(black_box(&params), &figure8_default_ns())
    });
    println!("{}", s.render());
    let s = bench("figure9_full_sweep", 200, || {
        figure9(black_box(&params), 64, &figure9_default_wms())
    });
    println!("{}", s.render());
}
